//! Scenario smoke for the CI gate (`ci.sh --scenario-smoke`, part of the
//! default gate; release build, < 10 s): every committed `scenarios/`
//! file must load and validate, and the quick ones must replay twice with
//! held invariants (convergence, never-wrong) and byte-identical
//! telemetry exports — the determinism contract end to end, from JSON on
//! disk to exported bytes.

use gdmp_workloads::scenario::{run_scenario, ScenarioOutcome};
use gdmp_workloads::Scenario;

/// Invariant sweep + the run's telemetry export for byte comparison.
fn check(name: &str, out: &ScenarioOutcome) -> String {
    match out {
        ScenarioOutcome::Fetch(f) => {
            assert!(f.converged, "{name}: fetch run did not converge");
            f.registry.export_json_lines()
        }
        ScenarioOutcome::ReplicationSoak(s) => {
            assert!(s.converged(), "{name}: soak violations {:?}", s.report.violations);
            s.registry.export_json_lines()
        }
        ScenarioOutcome::CatalogSoak(c) => {
            assert!(c.never_wrong(), "{name}: wrong answers {:?}", c.stats);
            assert!(c.converged(), "{name}: catalog violations {:?}", c.report.violations);
            c.registry.export_json_lines()
        }
        ScenarioOutcome::GridSoak(g) => {
            assert_eq!(g.wrong_answers, 0, "{name}: grid soak returned wrong answers");
            g.registry.export_json_lines()
        }
    }
}

fn main() {
    let t0 = std::time::Instant::now();
    let dir = std::path::Path::new("scenarios");
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .expect("run from the repo root: scenarios/ not found")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "scenarios/ holds no scenario files");

    for path in &files {
        let p = path.to_str().expect("utf-8 path");
        let scenario = Scenario::load(p).unwrap_or_else(|e| panic!("{p}: {e}"));
        println!(
            "loaded   {p}: {} sites, workload {}, seed {:#x}",
            scenario.topology.site_names().len(),
            scenario.workload.kind(),
            scenario.seed
        );
    }

    // Replay the quick shapes twice each; full/at_scale stay load-only so
    // the smoke holds its <10 s budget.
    for name in ["fetch.json", "soak_quick.json", "catalog_quick.json", "grid_quick.json"] {
        let p = format!("scenarios/{name}");
        let scenario = Scenario::load(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
        let a = run_scenario(&scenario).unwrap_or_else(|e| panic!("{p}: {e}"));
        let b = run_scenario(&scenario).unwrap_or_else(|e| panic!("{p}: {e}"));
        let ea = check(name, &a);
        let eb = check(name, &b);
        assert_eq!(ea, eb, "{p}: same scenario, different exported bytes");
        println!("replayed {p}: invariants held, {} export bytes, byte-identical", ea.len());
    }
    println!("scenario smoke OK in {:.2} s", t0.elapsed().as_secs_f64());
}
