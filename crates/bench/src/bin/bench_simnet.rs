//! Tracked perf baseline for the simulator: fidelity-adaptive (`Auto`)
//! versus packet-exact (`Off`) runs of the headline transfer scenarios and
//! the full Figure 5/6 sweeps.
//!
//! ```text
//! cargo run -p gdmp-bench --release --bin bench_simnet            # writes BENCH_simnet.json
//! cargo run -p gdmp-bench --release --bin bench_simnet -- out.json
//! ```
//!
//! The JSON is the committed baseline (`BENCH_simnet.json` at the repo
//! root): wall time, events processed/skipped, events/sec, and throughput
//! deltas per scenario, plus sweep-level speedups. Wall times move with the
//! host; the event counts and throughput deltas are deterministic and must
//! not regress.

use std::time::Instant;

use gdmp_bench::figures::fig_sweep_on;
use gdmp_bench::parallel::default_workers;
use gdmp_gridftp::sim::WanProfile;
use gdmp_simnet::LinkSpec;
use gdmp_workloads::{run_fanout, FanoutSpec, FigureSweep, MB};

/// Wall time of the pre-fast-forward simulator (commit 85d795a) running the
/// full Figure 5 + Figure 6 sweeps serially on the reference host, measured
/// with the same release settings. The end-to-end speedup in `totals` is
/// computed against this; override with `GDMP_SEED_SWEEP_MS` when
/// re-baselining on different hardware.
const SEED_SWEEP_MS: f64 = 5136.0;

#[derive(serde::Serialize)]
struct ModeStats {
    wall_ms: f64,
    events_processed: u64,
    events_skipped: u64,
    /// Dispatched events per wall-clock second — the simulator's raw speed.
    events_per_sec: u64,
    mbps: f64,
}

#[derive(serde::Serialize)]
struct Scenario {
    name: &'static str,
    profile: &'static str,
    file_mb: u64,
    streams: u32,
    buffer_kb: u64,
    exact: ModeStats,
    auto: ModeStats,
    /// exact events / auto events (≥ 10 when steady state dominates; 1.0
    /// where the lossless-fit gate correctly refuses to engage).
    event_reduction: f64,
    /// |auto − exact| / exact × 100 (must stay ≤ 2).
    throughput_delta_pct: f64,
}

#[derive(serde::Serialize)]
struct Sweep {
    name: &'static str,
    points: usize,
    wall_ms_exact: f64,
    wall_ms_auto: f64,
    speedup: f64,
    max_throughput_delta_pct: f64,
}

/// One worker count of the sharded-engine scaling sweep. Only `workers`
/// is deterministic; wall time and events/sec move with the host (and are
/// excluded from the regression gate — the baseline's `host_cores` records
/// how much parallelism the numbers could even express).
#[derive(serde::Serialize)]
struct ScalingPoint {
    workers: usize,
    wall_ms: f64,
    events_per_sec: u64,
}

/// The `fanout` scenario run packet-exact at 1/2/4/8 engine workers. The
/// event count is identical at every worker count (the byte-identity
/// contract of the sharded engine); the speedup is events/sec at the best
/// worker count over events/sec serial.
#[derive(serde::Serialize)]
struct Scaling {
    scenario: &'static str,
    sites: u32,
    bytes_per_site: u64,
    events_processed: u64,
    points: Vec<ScalingPoint>,
    speedup_at_max: f64,
}

#[derive(serde::Serialize)]
struct Totals {
    wall_ms_exact: f64,
    wall_ms_auto: f64,
    /// Auto vs the packet-exact run of the *same* code.
    speedup_vs_exact: f64,
    /// Full-sweep wall of the pre-fast-forward simulator (see
    /// `seed_sweep_ms`) vs this run's Auto sweeps — the end-to-end win of
    /// event folding + fast-forwarding + scenario parallelism.
    sweep_speedup_vs_seed: f64,
}

#[derive(serde::Serialize)]
struct Baseline {
    schema: &'static str,
    workers: usize,
    /// Cores available on the host that produced this baseline. The gate
    /// skips the scaling comparison when either host has fewer cores than
    /// the sweep's worker counts — the ratio cannot be expressed there.
    host_cores: usize,
    /// Reference wall time of the seed simulator's serial figure sweeps.
    seed_sweep_ms: f64,
    scenarios: Vec<Scenario>,
    sweeps: Vec<Sweep>,
    scaling: Scaling,
    totals: Totals,
}

fn ms(d: std::time::Duration) -> f64 {
    (d.as_secs_f64() * 1e3 * 1e3).round() / 1e3
}

fn run_mode(profile: &WanProfile, file_mb: u64, streams: u32, buffer_kb: u64) -> ModeStats {
    let t0 = Instant::now();
    let r = profile.simulate_transfer(file_mb * MB, streams, buffer_kb * 1024);
    let wall = t0.elapsed();
    ModeStats {
        wall_ms: ms(wall),
        events_processed: r.events_processed,
        events_skipped: r.events_skipped,
        events_per_sec: (r.events_processed as f64 / wall.as_secs_f64().max(1e-9)) as u64,
        mbps: (r.throughput_mbps() * 1e3).round() / 1e3,
    }
}

fn scenario(
    name: &'static str,
    (profile_name, profile): (&'static str, WanProfile),
    file_mb: u64,
    streams: u32,
    buffer_kb: u64,
) -> Scenario {
    let exact = run_mode(&profile.exact(), file_mb, streams, buffer_kb);
    let auto = run_mode(&profile, file_mb, streams, buffer_kb);
    let reduction = exact.events_processed as f64 / auto.events_processed.max(1) as f64;
    let delta = (auto.mbps - exact.mbps).abs() / exact.mbps * 100.0;
    Scenario {
        name,
        profile: profile_name,
        file_mb,
        streams,
        buffer_kb,
        exact,
        auto,
        event_reduction: (reduction * 10.0).round() / 10.0,
        throughput_delta_pct: (delta * 1e3).round() / 1e3,
    }
}

fn sweep(name: &'static str, grid: FigureSweep) -> Sweep {
    let profile = WanProfile::cern_anl_production();
    let t0 = Instant::now();
    let exact_rows = fig_sweep_on(&grid, profile.exact());
    let wall_exact = t0.elapsed();
    let t1 = Instant::now();
    let auto_rows = fig_sweep_on(&grid, profile);
    let wall_auto = t1.elapsed();
    let max_delta = exact_rows
        .iter()
        .zip(&auto_rows)
        .map(|(e, a)| (a.mbps - e.mbps).abs() / e.mbps * 100.0)
        .fold(0.0f64, f64::max);
    Sweep {
        name,
        points: exact_rows.len(),
        wall_ms_exact: ms(wall_exact),
        wall_ms_auto: ms(wall_auto),
        speedup: (wall_exact.as_secs_f64() / wall_auto.as_secs_f64() * 10.0).round() / 10.0,
        max_throughput_delta_pct: (max_delta * 1e3).round() / 1e3,
    }
}

fn scaling_sweep() -> Scaling {
    let spec = FanoutSpec::bench_default();
    let mut points = Vec::new();
    let mut events = 0u64;
    let mut eps_serial = 0.0f64;
    let mut eps_best = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let run = run_fanout(&spec.with_workers(workers));
        let wall = t0.elapsed();
        let eps = run.events_processed as f64 / wall.as_secs_f64().max(1e-9);
        if workers == 1 {
            events = run.events_processed;
            eps_serial = eps;
        } else {
            assert_eq!(
                events, run.events_processed,
                "sharded engine event count diverged at {workers} workers"
            );
        }
        eps_best = eps_best.max(eps);
        points.push(ScalingPoint { workers, wall_ms: ms(wall), events_per_sec: eps as u64 });
    }
    Scaling {
        scenario: "fanout",
        sites: spec.sites,
        bytes_per_site: spec.bytes_per_site,
        events_processed: events,
        points,
        speedup_at_max: (eps_best / eps_serial.max(1e-9) * 100.0).round() / 100.0,
    }
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_simnet.json".into());
    let seed_ms = std::env::var("GDMP_SEED_SWEEP_MS")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or(SEED_SWEEP_MS);
    let dedicated = ("cern_anl_dedicated", WanProfile::clean(LinkSpec::cern_anl()));
    let production = ("cern_anl_production", WanProfile::cern_anl_production());
    let scenarios = vec![
        // The headline acceptance scenario: tuned bulk transfer on the
        // uncontended CERN↔ANL path — steady state almost throughout.
        scenario("tuned_bulk", dedicated, 100, 1, 1024),
        // Contended variants: untuned fits losslessly (fast-forwards);
        // tuned oversubscribes the queue, so the gate keeps it exact.
        scenario("untuned_bulk", production, 100, 1, 64),
        scenario("tuned_parallel", production, 100, 4, 1024),
    ];
    let sweeps = vec![
        sweep("figure5_untuned", FigureSweep::figure5()),
        sweep("figure6_tuned", FigureSweep::figure6()),
    ];
    let scaling = scaling_sweep();
    let wall_exact: f64 = scenarios.iter().map(|s| s.exact.wall_ms).sum::<f64>()
        + sweeps.iter().map(|s| s.wall_ms_exact).sum::<f64>();
    let wall_auto: f64 = scenarios.iter().map(|s| s.auto.wall_ms).sum::<f64>()
        + sweeps.iter().map(|s| s.wall_ms_auto).sum::<f64>();
    let sweep_auto: f64 = sweeps.iter().map(|s| s.wall_ms_auto).sum::<f64>();
    let baseline = Baseline {
        schema: "gdmp-bench-simnet/2",
        workers: default_workers(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed_sweep_ms: seed_ms,
        scenarios,
        sweeps,
        scaling,
        totals: Totals {
            wall_ms_exact: (wall_exact * 1e3).round() / 1e3,
            wall_ms_auto: (wall_auto * 1e3).round() / 1e3,
            speedup_vs_exact: (wall_exact / wall_auto * 10.0).round() / 10.0,
            sweep_speedup_vs_seed: (seed_ms / sweep_auto * 10.0).round() / 10.0,
        },
    };
    for s in &baseline.scenarios {
        println!(
            "{:>16}: {:>4} MB x{:<2} {:>5} KB  exact {:>9.1} ms / {:>9} ev   auto {:>8.1} ms / \
             {:>7} ev   {:>6.1}x events, tput Δ {:.3}%",
            s.name,
            s.file_mb,
            s.streams,
            s.buffer_kb,
            s.exact.wall_ms,
            s.exact.events_processed,
            s.auto.wall_ms,
            s.auto.events_processed,
            s.event_reduction,
            s.throughput_delta_pct,
        );
    }
    for s in &baseline.sweeps {
        println!(
            "{:>16}: {:>2} points          exact {:>9.1} ms                auto {:>8.1} ms   \
             {:>6.1}x wall, max tput Δ {:.3}%",
            s.name,
            s.points,
            s.wall_ms_exact,
            s.wall_ms_auto,
            s.speedup,
            s.max_throughput_delta_pct,
        );
    }
    for p in &baseline.scaling.points {
        println!(
            "{:>16}: {} workers        {:>9.1} ms  {:>9} events/s  ({} events)",
            baseline.scaling.scenario,
            p.workers,
            p.wall_ms,
            p.events_per_sec,
            baseline.scaling.events_processed,
        );
    }
    println!(
        "{:>16}: {:.2}x events/s at best worker count ({} host cores)",
        "scaling", baseline.scaling.speedup_at_max, baseline.host_cores,
    );
    println!(
        "{:>16}: exact {:.1} ms → auto {:.1} ms ({:.1}x; sweeps {:.1}x vs seed {:.0} ms; {} workers)",
        "total",
        baseline.totals.wall_ms_exact,
        baseline.totals.wall_ms_auto,
        baseline.totals.speedup_vs_exact,
        baseline.totals.sweep_speedup_vs_seed,
        baseline.seed_sweep_ms,
        baseline.workers,
    );
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&out, json + "\n").expect("baseline written");
    println!("wrote {out}");
}
