//! Sim-time timeline rendering: the `figures timeline` subcommand turns a
//! run's windowed time-series (link utilisation, fetch throughput, breaker
//! state, queue depths) into a deterministic TSV table and terminal
//! sparklines. Everything here is a pure function of the registry
//! snapshot, so same-seed runs render byte-identical output.

use gdmp_telemetry::{Registry, SeriesKind, TimeSeries};

/// Column id of a series: `name` or `name{labels}`.
pub fn series_column_id(s: &TimeSeries) -> String {
    if s.labels.is_empty() {
        s.name.clone()
    } else {
        format!("{}{{{}}}", s.name, s.labels)
    }
}

/// The union bucket range `[lo, hi]` covered by any series (None when no
/// series has points).
fn bucket_range(series: &[TimeSeries]) -> Option<(u64, u64)> {
    let lo = series.iter().filter_map(|s| s.points.first().map(|(b, _)| *b)).min()?;
    let hi = series.iter().map(TimeSeries::last_bucket).max()?;
    Some((lo, hi))
}

/// Deterministic TSV: header `bucket start_s <column per series>`, one row
/// per bucket over the union range, dense-filled per the series kind
/// (zeros for deltas, carry-forward for levels). Series order is the
/// store's BTreeMap order, so the layout never depends on insertion order.
pub fn timeline_tsv(reg: &Registry) -> String {
    let series = reg.timeseries_snapshot();
    let Some((lo, hi)) = bucket_range(&series) else {
        return String::new();
    };
    let bucket_ns = series[0].bucket_ns;
    let mut out = String::from("bucket\tstart_s");
    for s in &series {
        out.push('\t');
        out.push_str(&series_column_id(s));
    }
    out.push('\n');
    let dense: Vec<Vec<i64>> = series.iter().map(|s| s.dense(lo, hi)).collect();
    for (i, bucket) in (lo..=hi).enumerate() {
        out.push_str(&format!("{bucket}\t{:.3}", bucket as f64 * bucket_ns as f64 / 1e9));
        for col in &dense {
            out.push('\t');
            out.push_str(&col[i].to_string());
        }
        out.push('\n');
    }
    out
}

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Unicode sparkline of `values` scaled to their max (empty input renders
/// empty; an all-zero series renders all-minimum bars).
pub fn sparkline(values: &[i64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0).max(1) as f64;
    values
        .iter()
        .map(|&v| {
            let idx = ((v.max(0) as f64 / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

/// Downsample `values` into at most `width` chunks: deltas sum within a
/// chunk, levels keep the chunk's last value — the same semantics the
/// buckets themselves have, one zoom level up.
pub fn downsample(values: &[i64], kind: SeriesKind, width: usize) -> Vec<i64> {
    if values.is_empty() || width == 0 {
        return Vec::new();
    }
    if values.len() <= width {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(width);
    values
        .chunks(chunk)
        .map(|c| match kind {
            SeriesKind::Delta => c.iter().sum(),
            SeriesKind::Level => *c.last().expect("chunks are non-empty"),
        })
        .collect()
}

/// Human rendering: one line per series with a sparkline over the union
/// range (downsampled to `width` cells), the kind, and the value extent.
pub fn render_timeline(reg: &Registry, width: usize) -> String {
    let series = reg.timeseries_snapshot();
    let Some((lo, hi)) = bucket_range(&series) else {
        return String::from("(no time-series recorded)\n");
    };
    let bucket_ns = series[0].bucket_ns;
    let name_w = series.iter().map(|s| series_column_id(s).len()).max().unwrap_or(0);
    let mut out = format!(
        "timeline: buckets {lo}..={hi} ({:.3} s each, {:.1} s..{:.1} s)\n",
        bucket_ns as f64 / 1e9,
        lo as f64 * bucket_ns as f64 / 1e9,
        (hi + 1) as f64 * bucket_ns as f64 / 1e9,
    );
    for s in &series {
        let dense = s.dense(lo, hi);
        let cells = downsample(&dense, s.kind, width);
        let max = dense.iter().copied().max().unwrap_or(0);
        out.push_str(&format!(
            "  {:<name_w$} [{:<5}] {} max {}\n",
            series_column_id(s),
            s.kind.as_str(),
            sparkline(&cells),
            max,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp_simnet::time::SimDuration;

    fn demo_registry() -> Registry {
        let reg = Registry::new();
        reg.enable_timeseries(SimDuration::from_secs(1).nanos());
        for (t, b) in [(0u64, 10u64), (1, 30), (3, 20)] {
            reg.series_add("link_bytes", &[("src", "cern"), ("dst", "lyon")], t * 1_000_000_000, b);
        }
        reg.series_set("breaker_open", &[("src", "cern")], 2_000_000_000, 1);
        reg.series_set("breaker_open", &[("src", "cern")], 3_500_000_000, 0);
        reg
    }

    #[test]
    fn tsv_is_dense_and_deterministic() {
        let tsv_a = timeline_tsv(&demo_registry());
        let tsv_b = timeline_tsv(&demo_registry());
        assert_eq!(tsv_a, tsv_b, "same inputs must render byte-identical TSV");
        let lines: Vec<&str> = tsv_a.lines().collect();
        assert_eq!(
            lines[0],
            "bucket\tstart_s\tbreaker_open{src=cern}\tlink_bytes{dst=lyon,src=cern}"
        );
        // Buckets 0..=3, delta gap filled with 0, level carried forward.
        assert_eq!(lines[1], "0\t0.000\t0\t10");
        assert_eq!(lines[2], "1\t1.000\t0\t30");
        assert_eq!(lines[3], "2\t2.000\t1\t0");
        assert_eq!(lines[4], "3\t3.000\t0\t20");
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn empty_registry_renders_empty() {
        let reg = Registry::new();
        assert_eq!(timeline_tsv(&reg), "");
        assert!(render_timeline(&reg, 40).contains("no time-series"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 5, 10]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
    }

    #[test]
    fn downsample_respects_kind() {
        let v: Vec<i64> = (0..10).collect();
        assert_eq!(downsample(&v, SeriesKind::Delta, 5), vec![1, 5, 9, 13, 17]);
        assert_eq!(downsample(&v, SeriesKind::Level, 5), vec![1, 3, 5, 7, 9]);
        assert_eq!(downsample(&v, SeriesKind::Delta, 20), v);
    }

    #[test]
    fn render_includes_every_series() {
        let text = render_timeline(&demo_registry(), 16);
        assert!(text.contains("link_bytes{dst=lyon,src=cern}"));
        assert!(text.contains("breaker_open{src=cern}"));
        assert!(text.contains("[delta]") && text.contains("[level]"));
    }
}
