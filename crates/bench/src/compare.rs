//! The perf-regression gate behind `ci.sh --bench-compare`: re-run the
//! deterministic metrics of the committed `BENCH_simnet.json`,
//! `BENCH_fetch.json`, `BENCH_catalog.json`, and `BENCH_grid.json`
//! baselines and fail on drift beyond per-metric tolerance bands.
//!
//! Wall-clock fields (`wall_ms`, `events_per_sec`, the wall-derived
//! `speedup`s) move with the host and are **excluded** from the gate; the
//! event counts, throughputs, source splits, and fidelity deltas are pure
//! sim-time and must reproduce. Tolerances are configurable via env:
//!
//! | env                    | default | applied to                         |
//! |------------------------|---------|------------------------------------|
//! | `GDMP_TOL_MBPS_PCT`    | 5       | throughputs and elapsed times      |
//! | `GDMP_TOL_EVENTS_PCT`  | 10      | event/byte/retry counts            |
//! | `GDMP_TOL_SPEEDUP_PCT` | 10      | striping speedup, event reduction  |
//! | `GDMP_TOL_DELTA_ABS`   | 1       | fidelity deltas (percentage points)|
//! | `GDMP_TOL_SCALING_PCT` | 50      | multi-worker events/sec speedup    |
//!
//! The scaling speedup is the one deliberately wall-derived gate: it
//! re-measures the fan-out scenario's events/sec at 1 and at the sweep's
//! best worker count, and is **skipped** (recorded in [`Gate::skipped`])
//! whenever either the current host or the baseline host has fewer cores
//! than the sweep's worker counts — the ratio cannot be expressed there.

use std::time::Instant;

use gdmp_gridftp::sim::WanProfile;
use gdmp_simnet::LinkSpec;
use gdmp_workloads::fetch::{run_fetch, striped_policy, FetchSpec, FETCH_SOURCES};
use gdmp_workloads::{run_fanout, FanoutSpec, FigureSweep, MB};

use crate::figures::fig_sweep_on;

// ---- tolerance bands -----------------------------------------------------

/// Per-metric tolerance bands (percentages and absolute percentage
/// points), read once from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    pub mbps_pct: f64,
    pub events_pct: f64,
    pub speedup_pct: f64,
    pub delta_abs: f64,
    pub scaling_pct: f64,
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            mbps_pct: 5.0,
            events_pct: 10.0,
            speedup_pct: 10.0,
            delta_abs: 1.0,
            scaling_pct: 50.0,
        }
    }
}

impl Tolerances {
    pub fn from_env() -> Self {
        let d = Tolerances::default();
        Tolerances {
            mbps_pct: env_f64("GDMP_TOL_MBPS_PCT", d.mbps_pct),
            events_pct: env_f64("GDMP_TOL_EVENTS_PCT", d.events_pct),
            speedup_pct: env_f64("GDMP_TOL_SPEEDUP_PCT", d.speedup_pct),
            delta_abs: env_f64("GDMP_TOL_DELTA_ABS", d.delta_abs),
            scaling_pct: env_f64("GDMP_TOL_SCALING_PCT", d.scaling_pct),
        }
    }
}

// ---- the gate ------------------------------------------------------------

/// Accumulates comparisons; a non-empty `violations` fails the gate.
/// `skipped` records checks that could not run on this host (informational,
/// never a failure).
#[derive(Debug, Default)]
pub struct Gate {
    pub checks: usize,
    pub violations: Vec<String>,
    pub skipped: Vec<String>,
}

impl Gate {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Relative check: `actual` within `tol_pct`% of `baseline`. A zero
    /// baseline demands a zero actual (counters that were silent must stay
    /// silent).
    pub fn within_pct(&mut self, what: &str, baseline: f64, actual: f64, tol_pct: f64) {
        self.checks += 1;
        let drift_pct = if baseline == 0.0 {
            if actual == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (actual - baseline).abs() / baseline.abs() * 100.0
        };
        if drift_pct > tol_pct {
            self.violations.push(format!(
                "{what}: {actual} vs baseline {baseline} ({drift_pct:.2}% drift > {tol_pct}%)"
            ));
        }
    }

    /// Absolute check, in the metric's own unit.
    pub fn within_abs(&mut self, what: &str, baseline: f64, actual: f64, tol_abs: f64) {
        self.checks += 1;
        let drift = (actual - baseline).abs();
        if drift > tol_abs {
            self.violations.push(format!(
                "{what}: {actual} vs baseline {baseline} (|Δ| {drift:.3} > {tol_abs})"
            ));
        }
    }

    /// Exact check for categorical fields (names, booleans, counts that
    /// define the baseline's shape).
    pub fn exact<T: PartialEq + std::fmt::Debug>(&mut self, what: &str, baseline: T, actual: T) {
        self.checks += 1;
        if baseline != actual {
            self.violations.push(format!("{what}: {actual:?} vs baseline {baseline:?}"));
        }
    }
}

// ---- baseline mirrors (deserialization only) -----------------------------

#[derive(serde::Deserialize)]
struct FetchShare {
    site: String,
    bytes: u64,
}

#[derive(serde::Deserialize)]
struct FetchMode {
    name: String,
    elapsed_s: f64,
    mbps: f64,
    sources: Vec<FetchShare>,
    ranges_reassigned: u64,
    plan_rebuilds: u64,
    converged: bool,
}

#[derive(serde::Deserialize)]
struct FetchBaseline {
    schema: String,
    modes: Vec<FetchMode>,
    striping_speedup: f64,
}

#[derive(serde::Deserialize)]
struct SimnetModeStats {
    events_processed: u64,
    events_skipped: u64,
    mbps: f64,
}

#[derive(serde::Deserialize)]
struct SimnetScenario {
    name: String,
    file_mb: u64,
    streams: u32,
    buffer_kb: u64,
    exact: SimnetModeStats,
    auto: SimnetModeStats,
    event_reduction: f64,
    throughput_delta_pct: f64,
}

#[derive(serde::Deserialize)]
struct SimnetSweep {
    name: String,
    points: u64,
    max_throughput_delta_pct: f64,
}

#[derive(serde::Deserialize)]
struct SimnetScalingPoint {
    workers: usize,
}

#[derive(serde::Deserialize)]
struct SimnetScaling {
    sites: u32,
    bytes_per_site: u64,
    events_processed: u64,
    points: Vec<SimnetScalingPoint>,
    speedup_at_max: f64,
}

#[derive(serde::Deserialize)]
struct SimnetBaseline {
    schema: String,
    host_cores: usize,
    scenarios: Vec<SimnetScenario>,
    sweeps: Vec<SimnetSweep>,
    scaling: SimnetScaling,
}

#[derive(serde::Deserialize)]
struct CatalogPoint {
    sites: usize,
    mode: String,
    lookups: u64,
    confirms: u64,
    rli_hits: u64,
    fallbacks: u64,
    scatters: u64,
    false_positives: u64,
    wrong_answers: u64,
    final_clock_s: f64,
}

#[derive(serde::Deserialize)]
struct CatalogBaseline {
    schema: String,
    points: Vec<CatalogPoint>,
}

#[derive(serde::Deserialize)]
struct GridControlPlanePoint {
    sites: usize,
    ops: u64,
    checksum: u64,
}

#[derive(serde::Deserialize)]
struct GridSoakBaselinePoint {
    sites: usize,
    lookups: u64,
    publishes: u64,
    fetches: u64,
    index_hits: u64,
    fallbacks: u64,
    scatters: u64,
    confirms: u64,
    false_positives: u64,
    wrong_answers: u64,
    final_clock_s: f64,
}

#[derive(serde::Deserialize)]
struct GridBaseline {
    schema: String,
    ops_per_point: u64,
    control_plane: Vec<GridControlPlanePoint>,
    soak: Vec<GridSoakBaselinePoint>,
}

// ---- fetch comparison ----------------------------------------------------

/// Re-run the three fetch modes and gate their deterministic metrics
/// against the committed `BENCH_fetch.json` contents.
pub fn compare_fetch(baseline_json: &str, tol: &Tolerances) -> Result<Gate, String> {
    let base: FetchBaseline =
        serde_json::from_str(baseline_json).map_err(|e| format!("BENCH_fetch.json: {e}"))?;
    let mut gate = Gate::default();
    gate.exact("fetch.schema", "gdmp-bench-fetch/1".to_string(), base.schema);

    let spec = FetchSpec::default();
    let runs = [
        ("single", run_fetch(&spec)),
        ("multi", run_fetch(&FetchSpec { policy: striped_policy(), ..spec.clone() })),
        (
            "multi_crash",
            run_fetch(&FetchSpec { policy: striped_policy(), crash_fastest: true, ..spec.clone() }),
        ),
    ];
    gate.exact("fetch.modes.len", base.modes.len(), runs.len());
    let mut single_mbps = 0.0;
    let mut multi_mbps = 0.0;
    for (b, (name, out)) in base.modes.iter().zip(&runs) {
        match *name {
            "single" => single_mbps = out.agg_mbps,
            "multi" => multi_mbps = out.agg_mbps,
            _ => {}
        }
        let p = format!("fetch.{name}");
        gate.exact(&format!("{p}.name"), b.name.clone(), name.to_string());
        gate.within_pct(&format!("{p}.mbps"), b.mbps, out.agg_mbps, tol.mbps_pct);
        gate.within_pct(
            &format!("{p}.elapsed_s"),
            b.elapsed_s,
            out.elapsed.as_secs_f64(),
            tol.mbps_pct,
        );
        for site in FETCH_SOURCES {
            let base_bytes =
                b.sources.iter().find(|s| s.site == site).map_or(0, |s| s.bytes) as f64;
            let actual_bytes =
                out.per_source_bytes.iter().find(|(s, _)| s == site).map_or(0, |(_, n)| *n) as f64;
            gate.within_pct(
                &format!("{p}.bytes[{site}]"),
                base_bytes,
                actual_bytes,
                tol.events_pct,
            );
        }
        gate.within_pct(
            &format!("{p}.ranges_reassigned"),
            b.ranges_reassigned as f64,
            out.ranges_reassigned as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.plan_rebuilds"),
            b.plan_rebuilds as f64,
            out.plan_rebuilds as f64,
            tol.events_pct,
        );
        gate.exact(&format!("{p}.converged"), b.converged, out.converged);
    }
    gate.within_pct(
        "fetch.striping_speedup",
        base.striping_speedup,
        multi_mbps / single_mbps.max(1e-9),
        tol.speedup_pct,
    );
    Ok(gate)
}

// ---- catalog comparison --------------------------------------------------

/// Re-run the catalog lookup grid and gate its deterministic metrics
/// against the committed `BENCH_catalog.json`. The wall-clock ops/sec in
/// the baseline is informational and not compared; the lookup mix, the
/// ladder counters, and the final sim clock are exact sim-time and must
/// reproduce. `wrong_answers` is held to literal zero — it is the
/// federation's correctness contract, not a perf number.
pub fn compare_catalog(baseline_json: &str, tol: &Tolerances) -> Result<Gate, String> {
    let base: CatalogBaseline =
        serde_json::from_str(baseline_json).map_err(|e| format!("BENCH_catalog.json: {e}"))?;
    let mut gate = Gate::default();
    gate.exact("catalog.schema", "gdmp-bench-catalog/1".to_string(), base.schema);

    let actual = crate::catalog::run_catalog_grid();
    gate.exact("catalog.points.len", base.points.len(), actual.len());
    for (b, a) in base.points.iter().zip(&actual) {
        let p = format!("catalog.{}x{}", b.sites, b.mode);
        gate.exact(&format!("{p}.sites"), b.sites, a.sites);
        gate.exact(&format!("{p}.mode"), b.mode.clone(), a.mode.to_string());
        gate.exact(&format!("{p}.lookups"), b.lookups, a.lookups);
        gate.exact(&format!("{p}.wrong_answers"), 0u64, a.wrong_answers);
        gate.exact(&format!("{p}.baseline_wrong_answers"), 0u64, b.wrong_answers);
        gate.within_pct(
            &format!("{p}.confirms"),
            b.confirms as f64,
            a.confirms as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.rli_hits"),
            b.rli_hits as f64,
            a.rli_hits as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.fallbacks"),
            b.fallbacks as f64,
            a.fallbacks as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.scatters"),
            b.scatters as f64,
            a.scatters as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.false_positives"),
            b.false_positives as f64,
            a.false_positives as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.final_clock_s"),
            b.final_clock_s,
            a.final_clock_ns as f64 / 1e9,
            tol.mbps_pct,
        );
    }
    Ok(gate)
}

// ---- grid comparison -----------------------------------------------------

/// Re-run the interned control-plane probe race and the Tier-0/1/2 grid
/// soak and gate their deterministic metrics against the committed
/// `BENCH_grid.json`. The checksums and op counts are exact by
/// construction; the soak's ladder split and final clock are pure
/// sim-time. Every wall-derived field (`*_ops_per_sec`, `*_wall_s`,
/// `speedup`) is host-dependent and **excluded** — the ≥2× acceptance bar
/// is enforced where the wall clock is actually measured, in `bench_grid`.
pub fn compare_grid(baseline_json: &str, tol: &Tolerances) -> Result<Gate, String> {
    let base: GridBaseline =
        serde_json::from_str(baseline_json).map_err(|e| format!("BENCH_grid.json: {e}"))?;
    let mut gate = Gate::default();
    gate.exact("grid.schema", "gdmp-bench-grid/1".to_string(), base.schema);
    gate.exact("grid.ops_per_point", crate::grid::GRID_OPS as u64, base.ops_per_point);

    let control = crate::grid::run_control_plane_grid();
    gate.exact("grid.control_plane.len", base.control_plane.len(), control.len());
    for (b, a) in base.control_plane.iter().zip(&control) {
        let p = format!("grid.control_plane.{}", b.sites);
        gate.exact(&format!("{p}.sites"), b.sites, a.sites);
        gate.exact(&format!("{p}.ops"), b.ops, a.ops);
        gate.exact(&format!("{p}.checksum"), b.checksum, a.checksum);
    }
    gate.skipped.push(
        "grid.control_plane.speedup: wall-derived, enforced at baseline-write time by bench_grid"
            .to_string(),
    );

    let soak = crate::grid::run_grid_soak_points();
    gate.exact("grid.soak.len", base.soak.len(), soak.len());
    for (b, a) in base.soak.iter().zip(&soak) {
        let p = format!("grid.soak.{}", b.sites);
        gate.exact(&format!("{p}.sites"), b.sites, a.sites);
        gate.exact(&format!("{p}.lookups"), b.lookups, a.lookups);
        gate.exact(&format!("{p}.publishes"), b.publishes, a.publishes);
        gate.exact(&format!("{p}.fetches"), b.fetches, a.fetches);
        gate.exact(&format!("{p}.wrong_answers"), 0u64, a.wrong_answers);
        gate.exact(&format!("{p}.baseline_wrong_answers"), 0u64, b.wrong_answers);
        gate.within_pct(
            &format!("{p}.index_hits"),
            b.index_hits as f64,
            a.index_hits as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.fallbacks"),
            b.fallbacks as f64,
            a.fallbacks as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.scatters"),
            b.scatters as f64,
            a.scatters as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.confirms"),
            b.confirms as f64,
            a.confirms as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.false_positives"),
            b.false_positives as f64,
            a.false_positives as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.final_clock_s"),
            b.final_clock_s,
            a.final_clock_ns as f64 / 1e9,
            tol.mbps_pct,
        );
    }
    Ok(gate)
}

// ---- simnet comparison ---------------------------------------------------

fn profile_for(scenario: &str) -> WanProfile {
    // The bench_simnet scenarios pick their profile by name; mirror that
    // here so the gate re-runs exactly what the baseline ran.
    match scenario {
        "tuned_bulk" => WanProfile::clean(LinkSpec::cern_anl()),
        _ => WanProfile::cern_anl_production(),
    }
}

/// Re-run the simnet scenarios and figure sweeps and gate the sim-time
/// metrics against the committed `BENCH_simnet.json` contents. Wall times
/// and events/sec are host-dependent and not compared.
pub fn compare_simnet(baseline_json: &str, tol: &Tolerances) -> Result<Gate, String> {
    let base: SimnetBaseline =
        serde_json::from_str(baseline_json).map_err(|e| format!("BENCH_simnet.json: {e}"))?;
    let mut gate = Gate::default();
    gate.exact("simnet.schema", "gdmp-bench-simnet/2".to_string(), base.schema);

    for s in &base.scenarios {
        let p = format!("simnet.{}", s.name);
        let profile = profile_for(&s.name);
        let bytes = s.file_mb * MB;
        let exact = profile.exact().simulate_transfer(bytes, s.streams, s.buffer_kb * 1024);
        let auto = profile.simulate_transfer(bytes, s.streams, s.buffer_kb * 1024);
        gate.within_pct(
            &format!("{p}.exact.events_processed"),
            s.exact.events_processed as f64,
            exact.events_processed as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.auto.events_processed"),
            s.auto.events_processed as f64,
            auto.events_processed as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.auto.events_skipped"),
            s.auto.events_skipped as f64,
            auto.events_skipped as f64,
            tol.events_pct,
        );
        gate.within_pct(
            &format!("{p}.exact.mbps"),
            s.exact.mbps,
            exact.throughput_mbps(),
            tol.mbps_pct,
        );
        gate.within_pct(
            &format!("{p}.auto.mbps"),
            s.auto.mbps,
            auto.throughput_mbps(),
            tol.mbps_pct,
        );
        let reduction = exact.events_processed as f64 / auto.events_processed.max(1) as f64;
        gate.within_pct(
            &format!("{p}.event_reduction"),
            s.event_reduction,
            reduction,
            tol.speedup_pct,
        );
        let delta = (auto.throughput_mbps() - exact.throughput_mbps()).abs()
            / exact.throughput_mbps()
            * 100.0;
        gate.within_abs(
            &format!("{p}.throughput_delta_pct"),
            s.throughput_delta_pct,
            delta,
            tol.delta_abs,
        );
    }

    for sw in &base.sweeps {
        let p = format!("simnet.{}", sw.name);
        let grid = match sw.name.as_str() {
            "figure5_untuned" => FigureSweep::figure5(),
            "figure6_tuned" => FigureSweep::figure6(),
            other => {
                gate.violations.push(format!("{p}: unknown sweep {other:?} in baseline"));
                continue;
            }
        };
        let profile = WanProfile::cern_anl_production();
        let exact_rows = fig_sweep_on(&grid, profile.exact());
        let auto_rows = fig_sweep_on(&grid, profile);
        gate.exact(&format!("{p}.points"), sw.points as usize, exact_rows.len());
        let max_delta = exact_rows
            .iter()
            .zip(&auto_rows)
            .map(|(e, a)| (a.mbps - e.mbps).abs() / e.mbps * 100.0)
            .fold(0.0f64, f64::max);
        gate.within_abs(
            &format!("{p}.max_throughput_delta_pct"),
            sw.max_throughput_delta_pct,
            max_delta,
            tol.delta_abs,
        );
    }

    // The sharded-engine scaling sweep. The event count and the
    // worker-count byte-identity are pure sim-time and always gated; the
    // events/sec speedup is wall-derived and only meaningful when both the
    // baseline host and this host actually have the cores.
    let spec = FanoutSpec {
        sites: base.scaling.sites,
        bytes_per_site: base.scaling.bytes_per_site,
        ..FanoutSpec::bench_default()
    };
    let t0 = Instant::now();
    let serial = run_fanout(&spec);
    let wall_serial = t0.elapsed();
    gate.within_pct(
        "simnet.fanout.events_processed",
        base.scaling.events_processed as f64,
        serial.events_processed as f64,
        tol.events_pct,
    );
    let par = run_fanout(&spec.with_workers(2));
    gate.exact("simnet.fanout.workers_deterministic", true, serial == par);
    let max_workers = base.scaling.points.iter().map(|p| p.workers).max().unwrap_or(1);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cores >= max_workers && base.host_cores >= max_workers {
        let t1 = Instant::now();
        let best = run_fanout(&spec.with_workers(max_workers));
        let wall_best = t1.elapsed();
        debug_assert_eq!(serial.events_processed, best.events_processed);
        let speedup = wall_serial.as_secs_f64() / wall_best.as_secs_f64().max(1e-9);
        gate.within_pct(
            "simnet.fanout.speedup_at_max",
            base.scaling.speedup_at_max,
            speedup,
            tol.scaling_pct,
        );
    } else {
        gate.skipped.push(format!(
            "simnet.fanout.speedup_at_max: needs {max_workers} cores (host has {host_cores}, \
             baseline host had {})",
            base.host_cores
        ));
    }
    Ok(gate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_within_tolerance_and_fails_outside() {
        let mut g = Gate::default();
        g.within_pct("a", 100.0, 104.0, 5.0);
        g.within_pct("b", 0.0, 0.0, 5.0);
        g.within_abs("c", 1.0, 1.5, 1.0);
        g.exact("d", true, true);
        assert!(g.passed(), "{:?}", g.violations);
        assert_eq!(g.checks, 4);

        g.within_pct("e", 100.0, 106.0, 5.0);
        g.within_pct("f", 0.0, 1.0, 5.0);
        g.within_abs("g", 1.0, 2.5, 1.0);
        g.exact("h", true, false);
        assert_eq!(g.violations.len(), 4);
        assert!(!g.passed());
    }

    #[test]
    fn malformed_baseline_is_an_error_not_a_pass() {
        let tol = Tolerances::default();
        assert!(compare_fetch("{not json", &tol).is_err());
        assert!(compare_simnet("{\"schema\": 3}", &tol).is_err());
        assert!(compare_catalog("[]", &tol).is_err());
        assert!(compare_grid("{\"schema\": \"gdmp-bench-grid/1\"}", &tol).is_err());
    }
}
