//! The federated-catalog lookup scenario shared by the `bench_catalog`
//! baseline writer, the `figures catalog` subcommand, and
//! [`crate::compare::compare_catalog`] (the CI gate).
//!
//! One point = one grid at a given scale answering a fixed deterministic
//! lookup mix, either against the central catalog alone (`central`) or
//! through the LRC/RLI federation (`federated`). Everything except the
//! wall-clock ops/sec is pure sim-time and reproduces bit for bit.

use std::time::Instant;

use bytes::Bytes;
use gdmp::prelude::*;
use gdmp_simnet::time::SimDuration;

/// Scales every baseline point runs at (the acceptance asks for 10, 50,
/// and 100+ sites).
pub const CATALOG_SITES: [usize; 3] = [10, 50, 100];

/// Lookups per point; fixed so the counters are comparable across runs.
pub const CATALOG_LOOKUPS: usize = 300;

const FILES_PER_SITE: usize = 2;

/// One measured (scale, mode) cell.
#[derive(Debug, Clone)]
pub struct CatalogBenchPoint {
    pub sites: usize,
    /// `central` or `federated`.
    pub mode: &'static str,
    pub lookups: u64,
    /// Confirm RPC round trips paid (federated only; central pays none).
    pub confirms: u64,
    pub rli_hits: u64,
    pub fallbacks: u64,
    pub scatters: u64,
    pub false_positives: u64,
    /// The contract: zero, always.
    pub wrong_answers: u64,
    /// Final sim clock after the lookup mix, nanoseconds (deterministic).
    pub final_clock_ns: u64,
    /// Wall-clock lookups/sec — host-dependent, informational only.
    pub wall_ops_per_sec: f64,
}

fn site_name(i: usize) -> String {
    format!("site{i:03}")
}

/// Run one point: publish a small population, warm the index, then answer
/// [`CATALOG_LOOKUPS`] deterministic queries.
pub fn run_catalog_bench(sites: usize, federated: bool) -> CatalogBenchPoint {
    let names: Vec<String> = (0..sites).map(site_name).collect();
    let mut builder = Grid::builder("bench-catalog")
        .default_profile(WanProfile::cern_anl_production())
        .recovery(Box::new(BackoffRetry::new(0)))
        .breaker(BreakerConfig::default());
    if federated {
        builder = builder.federation(FederationConfig::default());
    }
    for (i, name) in names.iter().enumerate() {
        builder = builder.site(SiteConfig::named(name, &format!("{name}.grid"), 900 + i as u64));
    }
    let mut grid = builder.trust_all().build();

    let total_files = sites * FILES_PER_SITE;
    for f in 0..total_files {
        let owner = &names[f % sites];
        grid.publish_file(owner, &format!("file{f:04}.dat"), Bytes::from(vec![1u8; 1024]), "flat")
            .expect("publish");
    }
    // Two soft-state rounds: the RLI tree summarizes every LRC.
    grid.advance(SimDuration::from_secs(65));

    let mut point = CatalogBenchPoint {
        sites,
        mode: if federated { "federated" } else { "central" },
        lookups: 0,
        confirms: 0,
        rli_hits: 0,
        fallbacks: 0,
        scatters: 0,
        false_positives: 0,
        wrong_answers: 0,
        final_clock_ns: 0,
        wall_ops_per_sec: 0.0,
    };
    let t0 = Instant::now();
    for i in 0..CATALOG_LOOKUPS {
        // A fixed pseudo-uniform mix: deterministic, covers the whole
        // population, requester never the trivial owner every time.
        let requester = &names[(i * 31) % sites];
        let lfn = format!("file{:04}.dat", (i * 7919) % total_files);
        let r = grid.lookup_replicas(requester, &lfn).expect("healthy grid answers");
        point.lookups += 1;
        point.confirms += u64::from(r.confirms);
        match r.via {
            LookupVia::Rli | LookupVia::Local => point.rli_hits += 1,
            LookupVia::Fallback => point.fallbacks += 1,
            LookupVia::Scatter => point.scatters += 1,
            LookupVia::Central => {}
        }
        point.false_positives += u64::from(r.false_positives);
    }
    let wall = t0.elapsed().as_secs_f64();
    point.wall_ops_per_sec = point.lookups as f64 / wall.max(1e-9);
    point.final_clock_ns = grid.now().nanos();
    if let Some(fed) = grid.federation() {
        point.wrong_answers = fed.stats.wrong_answers;
    }
    point
}

/// Every (scale, mode) cell of the baseline grid.
pub fn run_catalog_grid() -> Vec<CatalogBenchPoint> {
    let mut points = Vec::new();
    for &sites in &CATALOG_SITES {
        points.push(run_catalog_bench(sites, false));
        points.push(run_catalog_bench(sites, true));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federated_point_is_deterministic_and_never_wrong() {
        let a = run_catalog_bench(10, true);
        let b = run_catalog_bench(10, true);
        assert_eq!(a.lookups, CATALOG_LOOKUPS as u64);
        assert_eq!(a.wrong_answers, 0);
        assert!(a.rli_hits > 0, "warm index should serve hits");
        assert_eq!(a.confirms, b.confirms);
        assert_eq!(a.rli_hits, b.rli_hits);
        assert_eq!(a.final_clock_ns, b.final_clock_ns);
    }

    #[test]
    fn central_point_pays_no_confirm_rpcs() {
        let p = run_catalog_bench(10, false);
        assert_eq!(p.mode, "central");
        assert_eq!(p.confirms, 0);
        assert_eq!(p.wrong_answers, 0);
        assert_eq!(p.lookups, CATALOG_LOOKUPS as u64);
    }
}
