//! Figures 5 and 6: GridFTP throughput vs number of parallel streams.

use gdmp_gridftp::sim::WanProfile;
use gdmp_workloads::FigureSweep;

use crate::parallel::{par_map, workers_for};

/// One data point of a throughput figure.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct FigRow {
    pub file_bytes: u64,
    pub streams: u32,
    pub buffer: u64,
    pub mbps: f64,
    pub retransmitted_segments: u64,
    pub timeouts: u64,
}

/// Run one figure's full parameter grid on the CERN↔ANL production
/// profile. Deterministic; ~40 packet-level simulations, fanned out over
/// worker threads (each point is an independent simulation) and merged
/// back in grid order, so the rows are byte-identical to a serial run.
pub fn fig_sweep(sweep: &FigureSweep) -> Vec<FigRow> {
    fig_sweep_on(sweep, WanProfile::cern_anl_production())
}

/// [`fig_sweep`] against an explicit profile (e.g. [`WanProfile::exact`]
/// for a packet-level reference run). Sweep parallelism is divided by the
/// profile's engine worker count so scenario threads × event-loop threads
/// never oversubscribe the machine.
pub fn fig_sweep_on(sweep: &FigureSweep, profile: WanProfile) -> Vec<FigRow> {
    let points: Vec<(u64, u32)> = sweep.points().collect();
    par_map(&points, workers_for(profile.workers), |&(file_bytes, streams)| {
        let r = profile.simulate_transfer(file_bytes, streams, sweep.buffer);
        FigRow {
            file_bytes,
            streams,
            buffer: sweep.buffer,
            mbps: r.throughput_mbps(),
            retransmitted_segments: r.retransmitted_segments,
            timeouts: r.timeouts,
        }
    })
}

/// Render a figure as the paper's table: one row per file size, one column
/// per stream count.
pub fn render(sweep: &FigureSweep, rows: &[FigRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "{}", sweep.label).unwrap();
    write!(out, "{:>8} |", "file").unwrap();
    for s in &sweep.streams {
        write!(out, "{s:>7}").unwrap();
    }
    writeln!(out, "   (streams → Mb/s)").unwrap();
    writeln!(out, "{:-<8}-+{:-<width$}", "", "", width = 7 * sweep.streams.len()).unwrap();
    for &size in &sweep.file_sizes {
        write!(out, "{:>5} MB |", size / (1024 * 1024)).unwrap();
        for &s in &sweep.streams {
            let row = rows
                .iter()
                .find(|r| r.file_bytes == size && r.streams == s)
                .expect("sweep covers all points");
            write!(out, " {:6.1}", row.mbps).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// The headline numbers a reader checks the figure shape against.
#[derive(Debug, Clone, Copy)]
pub struct FigShape {
    /// Best throughput of the largest file and the streams achieving it.
    pub peak_mbps: f64,
    pub peak_streams: u32,
    /// Single-stream throughput of the largest file.
    pub single_mbps: f64,
    /// Mean throughput of the smallest (1 MB) file across stream counts.
    pub small_file_mean: f64,
}

pub fn shape(sweep: &FigureSweep, rows: &[FigRow]) -> FigShape {
    let largest = *sweep.file_sizes.iter().max().expect("non-empty");
    let smallest = *sweep.file_sizes.iter().min().expect("non-empty");
    let big: Vec<&FigRow> = rows.iter().filter(|r| r.file_bytes == largest).collect();
    let peak = big.iter().max_by(|a, b| a.mbps.total_cmp(&b.mbps)).expect("non-empty");
    let single = big.iter().find(|r| r.streams == 1).expect("streams include 1");
    let small: Vec<f64> =
        rows.iter().filter(|r| r.file_bytes == smallest).map(|r| r.mbps).collect();
    FigShape {
        peak_mbps: peak.mbps,
        peak_streams: peak.streams,
        single_mbps: single.mbps,
        small_file_mean: small.iter().sum::<f64>() / small.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_figure5_shape() {
        let sweep = FigureSweep::quick(64 * 1024);
        let rows = fig_sweep(&sweep);
        assert_eq!(rows.len(), sweep.points().count());
        let shape = shape(&sweep, &rows);
        // Parallel untuned streams must beat a single one substantially.
        assert!(
            shape.peak_mbps > 2.0 * shape.single_mbps,
            "peak {:.1} vs single {:.1}",
            shape.peak_mbps,
            shape.single_mbps
        );
        // The 1 MB file is slow-start bound: well below the big-file peak.
        assert!(shape.small_file_mean < shape.peak_mbps / 1.5);
    }

    #[test]
    fn tuned_quick_sweep_peaks_early() {
        let sweep = FigureSweep::quick(1024 * 1024);
        let rows = fig_sweep(&sweep);
        let shape = shape(&sweep, &rows);
        // Figure 6's signature: a single tuned stream is already within
        // 3× of the peak (vs ~8× for untuned).
        assert!(shape.single_mbps * 3.0 > shape.peak_mbps);
    }

    #[test]
    fn render_contains_every_size() {
        let sweep = FigureSweep::quick(64 * 1024);
        let rows = fig_sweep(&sweep);
        let text = render(&sweep, &rows);
        assert!(text.contains("1 MB"));
        assert!(text.contains("25 MB"));
    }
}
