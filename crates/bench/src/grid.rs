//! The interned-id control-plane scenario shared by the `bench_grid`
//! baseline writer, the `figures grid` subcommand, and
//! [`crate::compare::compare_grid`] (the CI gate).
//!
//! Two kinds of point:
//!
//! * **Control-plane points** race the same deterministic probe mix
//!   (WAN-profile lookups, observed-throughput history, roster membership,
//!   periodic roster sweeps) through the real interned-id [`Grid`] and
//!   through a faithful replica of the pre-interning string-keyed maps
//!   (`BTreeMap<(String, String), _>` with per-probe owned-tuple keys,
//!   `Vec<String>` roster clones per sweep). Both sides fold every answer
//!   into a checksum that must agree — same work, different key plumbing.
//!   The acceptance bar is ≥2× ops/sec at 100+ sites.
//! * **Soak points** run the Tier-0/1/2 grid soak from
//!   [`gdmp_workloads::grid`] and report its deterministic ladder split and
//!   replica hit rate, plus the (informational) wall time.

use std::collections::BTreeMap;
use std::time::Instant;

use gdmp::prelude::*;
use gdmp_workloads::{run_grid_soak, GridSoakSpec};

/// Scales the control-plane points run at (the acceptance asks for ≥2× at
/// 100+ sites; 200 shows the gap widening with scale).
pub const GRID_SITES: [usize; 3] = [50, 100, 200];

/// Probes per control-plane point; fixed so checksums are comparable.
pub const GRID_OPS: usize = 400_000;

/// Soak scales: the quick 16-site topology, the 105-site acceptance
/// topology, and a 200+-site stretch point.
pub const SOAK_SCALES: [usize; 3] = [16, 105, 200];

fn site_name(i: usize) -> String {
    format!("site{i:03}")
}

// ---- the string-keyed baseline replica -----------------------------------

/// The control-plane maps exactly as they were keyed before interning:
/// owned `String` pairs for profiles and history, a name-keyed roster, and
/// per-call `to_string()` tuple probes.
struct StringControlPlane {
    roster: BTreeMap<String, usize>,
    profiles: BTreeMap<(String, String), WanProfile>,
    history: BTreeMap<(String, String), f64>,
    default_profile: WanProfile,
}

impl StringControlPlane {
    fn profile_between(&self, a: &str, b: &str) -> WanProfile {
        self.profiles.get(&(a.to_string(), b.to_string())).copied().unwrap_or(self.default_profile)
    }

    fn observed_bps(&self, src: &str, dst: &str) -> Option<f64> {
        self.history.get(&(src.to_string(), dst.to_string())).copied()
    }

    fn has_site(&self, name: &str) -> bool {
        self.roster.contains_key(name)
    }

    /// The pre-interning roster sweep: clone every name, then walk the
    /// clones (what `advance`/notice flushing used to do each tick).
    fn sweep(&self) -> u64 {
        let names: Vec<String> = self.roster.keys().cloned().collect();
        names.iter().map(|n| n.len() as u64).sum()
    }
}

// ---- shared fixture -------------------------------------------------------

/// Build the interned grid and its string-keyed twin with identical
/// profile/history contents at `sites` scale.
fn build_pair(sites: usize) -> (Grid, StringControlPlane, Vec<String>) {
    let names: Vec<String> = (0..sites).map(site_name).collect();
    let mut builder = Grid::builder("bench-grid");
    for (i, name) in names.iter().enumerate() {
        builder = builder.site(SiteConfig::named(name, &format!("{name}.grid"), 900 + i as u64));
    }
    let mut grid = builder.trust_all().build();

    let default_profile = WanProfile::cern_anl_production();
    let mut twin = StringControlPlane {
        roster: names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect(),
        profiles: BTreeMap::new(),
        history: BTreeMap::new(),
        default_profile,
    };
    // A ring plus a star off site000: enough pairs that probes hit real
    // entries as well as the default-profile fallback.
    let tuned = WanProfile::cern_anl_production();
    for i in 0..sites {
        let a = &names[i];
        let ring = &names[(i + 1) % sites];
        let hub = &names[0];
        grid.set_profile(a, ring, tuned);
        grid.note_observed_throughput(a, ring, 1e6 + i as f64);
        twin.profiles.insert((a.clone(), ring.clone()), tuned);
        twin.history.insert((a.clone(), ring.clone()), 1e6 + i as f64);
        if i > 0 {
            grid.set_profile(hub, a, tuned);
            twin.profiles.insert((hub.clone(), a.clone()), tuned);
        }
    }
    (grid, twin, names)
}

fn fold(checksum: &mut u64, v: u64) {
    *checksum = checksum.wrapping_mul(0x100000001B3).wrapping_add(v);
}

/// One probe: a profile lookup, a history lookup, a membership test, and —
/// every 16th op — a roster sweep. Answers fold into the checksum.
macro_rules! probe_mix {
    ($names:expr, $sites:expr, $checksum:expr, $i:expr,
     $profile:expr, $observed:expr, $has:expr, $sweep:expr) => {{
        let a: &str = &$names[($i * 31) % $sites];
        let b: &str = &$names[($i * 7919 + 1) % $sites];
        let p = $profile(a, b);
        fold($checksum, p.link.rate_bps);
        fold($checksum, $observed(a, b).map_or(0, |v| v as u64));
        fold($checksum, u64::from($has(a)));
        if $i % 16 == 0 {
            fold($checksum, $sweep());
        }
    }};
}

/// One measured control-plane point.
#[derive(Debug, Clone)]
pub struct ControlPlanePoint {
    pub sites: usize,
    pub ops: u64,
    /// Deterministic fold of every probe answer; identical between the
    /// string-keyed and interned runs by construction (asserted).
    pub checksum: u64,
    /// Wall seconds for the string-keyed run (host-dependent).
    pub string_wall_s: f64,
    /// Wall seconds for the interned run (host-dependent).
    pub interned_wall_s: f64,
    pub string_ops_per_sec: f64,
    pub interned_ops_per_sec: f64,
    /// interned ops/sec over string ops/sec.
    pub speedup: f64,
}

/// Race the probe mix through both control planes at `sites` scale.
pub fn run_control_plane_bench(sites: usize) -> ControlPlanePoint {
    let (grid, twin, names) = build_pair(sites);

    let mut string_sum = 0u64;
    let t0 = Instant::now();
    for i in 0..GRID_OPS {
        probe_mix!(
            names,
            sites,
            &mut string_sum,
            i,
            |a, b| twin.profile_between(a, b),
            |a, b| twin.observed_bps(a, b),
            |a| twin.has_site(a),
            || twin.sweep()
        );
    }
    let string_wall = t0.elapsed().as_secs_f64();

    let mut interned_sum = 0u64;
    let t1 = Instant::now();
    for i in 0..GRID_OPS {
        probe_mix!(
            names,
            sites,
            &mut interned_sum,
            i,
            |a, b| grid.profile_between(a, b),
            |a, b| grid.observed_bps(a, b),
            |a| grid.has_site(a),
            || grid.site_names_iter().map(|n| n.len() as u64).sum::<u64>()
        );
    }
    let interned_wall = t1.elapsed().as_secs_f64();

    assert_eq!(
        string_sum, interned_sum,
        "the two control planes answered the same probes differently"
    );
    ControlPlanePoint {
        sites,
        ops: GRID_OPS as u64,
        checksum: interned_sum,
        string_wall_s: string_wall,
        interned_wall_s: interned_wall,
        string_ops_per_sec: GRID_OPS as f64 / string_wall.max(1e-9),
        interned_ops_per_sec: GRID_OPS as f64 / interned_wall.max(1e-9),
        speedup: string_wall / interned_wall.max(1e-9),
    }
}

/// Every control-plane scale.
pub fn run_control_plane_grid() -> Vec<ControlPlanePoint> {
    GRID_SITES.iter().map(|&s| run_control_plane_bench(s)).collect()
}

// ---- soak points ----------------------------------------------------------

/// One Tier-0/1/2 soak point: deterministic ladder split plus wall time.
#[derive(Debug, Clone)]
pub struct GridSoakPoint {
    pub sites: usize,
    pub lookups: u64,
    pub publishes: u64,
    pub fetches: u64,
    pub index_hits: u64,
    pub fallbacks: u64,
    pub scatters: u64,
    pub confirms: u64,
    pub false_positives: u64,
    pub wrong_answers: u64,
    pub replica_hit_rate: f64,
    pub final_clock_ns: u64,
    /// Wall seconds for the whole soak (host-dependent).
    pub wall_s: f64,
}

fn spec_at(scale: usize) -> GridSoakSpec {
    match scale {
        16 => GridSoakSpec::quick(),
        105 => GridSoakSpec::full(),
        n => GridSoakSpec::at_scale(n),
    }
}

/// Run the soak at one scale.
pub fn run_grid_soak_bench(scale: usize) -> GridSoakPoint {
    let spec = spec_at(scale);
    let t0 = Instant::now();
    let out = run_grid_soak(&spec);
    let wall = t0.elapsed().as_secs_f64();
    GridSoakPoint {
        sites: out.sites,
        lookups: out.lookups,
        publishes: out.publishes,
        fetches: out.fetches,
        index_hits: out.index_hits,
        fallbacks: out.fallbacks,
        scatters: out.scatters,
        confirms: out.confirms,
        false_positives: out.false_positives,
        wrong_answers: out.wrong_answers,
        replica_hit_rate: out.replica_hit_rate(),
        final_clock_ns: out.final_clock_ns,
        wall_s: wall,
    }
}

/// Every soak scale.
pub fn run_grid_soak_points() -> Vec<GridSoakPoint> {
    SOAK_SCALES.iter().map(|&s| run_grid_soak_bench(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_plane_checksums_agree_and_reproduce() {
        let a = run_control_plane_bench(10);
        let b = run_control_plane_bench(10);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.ops, GRID_OPS as u64);
    }

    #[test]
    fn soak_point_is_deterministic_and_never_wrong() {
        let a = run_grid_soak_bench(16);
        let b = run_grid_soak_bench(16);
        assert_eq!(a.wrong_answers, 0);
        assert_eq!(a.lookups, b.lookups);
        assert_eq!(a.index_hits, b.index_hits);
        assert_eq!(a.final_clock_ns, b.final_clock_ns);
        assert!(a.replica_hit_rate > 0.0);
    }
}
