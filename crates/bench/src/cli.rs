//! Shared argument parsing for every scenario-driven subcommand and
//! binary: `figures fetch|catalog|grid|timeline|chaos` and the `bench_*`
//! baseline writers all accept the same `--scenario <file>`, `--seed <n>`,
//! `--json`, and `--trace` flags through this one helper, instead of each
//! growing its own ad-hoc parser.
//!
//! `--scenario` swaps the builtin experiment for a committed or
//! hand-written scenario file (see `scenarios/` and the DESIGN.md §17
//! schema); `--seed` overrides the scenario's seed in place. Without
//! either flag the builtin scenario runs, byte-identical to the
//! pre-DSL hard-coded constructors.

use gdmp_workloads::{Scenario, ScenarioError};

/// The flags shared by every scenario-driven entry point.
#[derive(Debug, Clone, Default)]
pub struct ScenarioArgs {
    /// Emit machine-readable JSON lines instead of human tables.
    pub json: bool,
    /// Append the telemetry dump of grid-driven experiments.
    pub trace: bool,
    /// Path to a scenario file replacing the builtin experiment.
    pub scenario: Option<String>,
    /// Seed override applied to the scenario (builtin or loaded).
    pub seed: Option<u64>,
}

impl ScenarioArgs {
    /// Parse the shared flags out of `args`, leaving positional arguments
    /// (subcommand names, output paths) in the returned `Vec`. Unknown
    /// `--flags` are an error naming the flag and listing what is
    /// accepted.
    pub fn parse(args: &[String]) -> Result<(ScenarioArgs, Vec<String>), String> {
        let mut out = ScenarioArgs::default();
        let mut positional = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
                _ => (arg.as_str(), None),
            };
            let mut value = |name: &str| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| format!("{name} needs a value (e.g. `{name} <value>`)")),
                }
            };
            match flag {
                "--json" => out.json = true,
                "--trace" => out.trace = true,
                "--scenario" => out.scenario = Some(value("--scenario")?),
                "--seed" => {
                    let raw = value("--seed")?;
                    out.seed = Some(parse_seed(&raw)?);
                }
                other if other.starts_with("--") => {
                    return Err(format!(
                        "unknown flag `{other}` (accepted flags: --scenario <file>, \
                         --seed <n>, --json, --trace)"
                    ));
                }
                _ => positional.push(arg.clone()),
            }
        }
        Ok((out, positional))
    }

    /// The scenario this invocation runs: the `--scenario` file if given,
    /// otherwise `builtin()`, with any `--seed` override applied.
    pub fn base_scenario(
        &self,
        builtin: impl FnOnce() -> Scenario,
    ) -> Result<Scenario, ScenarioError> {
        let mut scenario = match &self.scenario {
            Some(path) => Scenario::load(path)?,
            None => builtin(),
        };
        if let Some(seed) = self.seed {
            scenario.seed = seed;
        }
        Ok(scenario)
    }
}

/// Seed syntax: decimal or `0x`-prefixed hex.
fn parse_seed(raw: &str) -> Result<u64, String> {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.map_err(|_| format!("--seed wants a u64 (decimal or 0x-hex), got `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_shared_flags_and_keeps_positionals() {
        let (args, pos) = ScenarioArgs::parse(&strings(&[
            "fetch",
            "--scenario",
            "scenarios/fetch.json",
            "--seed",
            "0xBEEF",
            "--json",
        ]))
        .unwrap();
        assert_eq!(pos, vec!["fetch".to_string()]);
        assert_eq!(args.scenario.as_deref(), Some("scenarios/fetch.json"));
        assert_eq!(args.seed, Some(0xBEEF));
        assert!(args.json && !args.trace);
    }

    #[test]
    fn equals_syntax_works() {
        let (args, _) = ScenarioArgs::parse(&strings(&["--scenario=x.json", "--seed=42"])).unwrap();
        assert_eq!(args.scenario.as_deref(), Some("x.json"));
        assert_eq!(args.seed, Some(42));
    }

    #[test]
    fn unknown_flag_is_an_error_naming_the_flag() {
        let err = ScenarioArgs::parse(&strings(&["--scenari", "x.json"])).unwrap_err();
        assert!(err.contains("--scenari"), "{err}");
        assert!(err.contains("accepted flags"), "{err}");
    }

    #[test]
    fn missing_value_and_bad_seed_are_errors() {
        assert!(ScenarioArgs::parse(&strings(&["--scenario"])).is_err());
        assert!(ScenarioArgs::parse(&strings(&["--seed", "pony"])).is_err());
    }

    #[test]
    fn seed_override_applies_to_the_builtin() {
        let (args, _) = ScenarioArgs::parse(&strings(&["--seed", "7"])).unwrap();
        let s = args
            .base_scenario(|| {
                Scenario::replication_soak(&gdmp_workloads::SoakSpec::quick(
                    gdmp_workloads::ChaosMode::Off,
                ))
            })
            .unwrap();
        assert_eq!(s.seed, 7);
    }
}
