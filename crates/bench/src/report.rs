//! Experiment output: one streaming emitter that renders each figure as
//! either aligned human tables or machine-readable JSON lines.
//!
//! Every cell keeps its native type until the moment of rendering, so the
//! `--json` mode of the `figures` binary emits real numbers (not
//! pre-formatted strings) while the human mode reproduces the paper-style
//! tables. JSON output reuses `gdmp-telemetry`'s deterministic writer, so
//! experiment rows and telemetry dumps can share one stream.

use gdmp_telemetry::json::JsonObject;
use gdmp_telemetry::Registry;

/// One typed table cell.
#[derive(Debug, Clone)]
pub enum Cell {
    Str(String),
    U64(u64),
    /// Float with the number of decimals used in human rendering (JSON
    /// emits the full value).
    F64(f64, usize),
    Bool(bool),
}

impl From<&str> for Cell {
    fn from(v: &str) -> Cell {
        Cell::Str(v.to_string())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Cell {
        Cell::Str(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::U64(v)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Cell {
        Cell::U64(u64::from(v))
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::U64(v as u64)
    }
}

impl From<bool> for Cell {
    fn from(v: bool) -> Cell {
        Cell::Bool(v)
    }
}

impl Cell {
    /// Float cell with `decimals` digits in human output.
    pub fn f(value: f64, decimals: usize) -> Cell {
        Cell::F64(value, decimals)
    }

    fn human(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::U64(n) => n.to_string(),
            Cell::F64(x, d) => format!("{x:.d$}", d = d),
            Cell::Bool(b) => b.to_string(),
        }
    }
}

/// Streaming report writer. Sections, notes, and tables print as they are
/// produced (the sweeps behind them can take minutes).
pub struct Report {
    json: bool,
    section: String,
}

impl Report {
    /// `json = false`: aligned human tables. `json = true`: JSON lines.
    pub fn new(json: bool) -> Report {
        Report { json, section: String::new() }
    }

    pub fn is_json(&self) -> bool {
        self.json
    }

    /// Start a named section; subsequent rows carry it as context.
    pub fn section(&mut self, title: &str) {
        self.section = title.to_string();
        if self.json {
            println!("{}", JsonObject::new().str("record", "section").str("title", title).finish());
        } else {
            println!("==============================================================");
            println!("{title}");
        }
    }

    /// Free-form commentary (paper comparisons, caveats). Suppressed from
    /// JSON output only in content, not in presence: machine consumers get
    /// it as a `note` record they can ignore.
    pub fn note(&self, text: &str) {
        if self.json {
            println!(
                "{}",
                JsonObject::new()
                    .str("record", "note")
                    .str("section", &self.section)
                    .str("text", text)
                    .finish()
            );
        } else {
            println!("{text}");
        }
    }

    /// Emit one table. Human mode aligns every column to its widest cell
    /// (right-aligned, `|`-separated, in the paper's layout); JSON mode
    /// emits one object per row keyed by the column headers.
    pub fn table(&self, headers: &[&str], rows: &[Vec<Cell>]) {
        if self.json {
            for row in rows {
                let mut obj = JsonObject::new().str("record", "row").str("section", &self.section);
                for (h, cell) in headers.iter().zip(row) {
                    obj = match cell {
                        Cell::Str(s) => obj.str(h, s),
                        Cell::U64(n) => obj.u64(h, *n),
                        Cell::F64(x, _) => obj.f64(h, *x),
                        Cell::Bool(b) => obj.raw(h, if *b { "true" } else { "false" }),
                    };
                }
                println!("{}", obj.finish());
            }
            return;
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> =
            rows.iter().map(|r| r.iter().map(Cell::human).collect()).collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line: Vec<String> =
            headers.iter().zip(&widths).map(|(h, w)| format!("{h:>w$}")).collect();
        println!("{}", line.join(" | "));
        for row in &rendered {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect();
            println!("{}", line.join(" | "));
        }
    }

    /// Pre-rendered block (e.g. the figure-5 grid). Human mode prints it
    /// verbatim; JSON mode wraps it in a `block` record.
    pub fn block(&self, text: &str) {
        if self.json {
            println!(
                "{}",
                JsonObject::new()
                    .str("record", "block")
                    .str("section", &self.section)
                    .str("text", text)
                    .finish()
            );
        } else {
            print!("{text}");
        }
    }

    /// Dump a telemetry registry into the report: the human summary table
    /// and span tree, or the registry's own deterministic JSON lines.
    pub fn telemetry(&self, reg: &Registry) {
        if !reg.is_enabled() {
            return;
        }
        if self.json {
            print!("{}", reg.export_json_lines());
        } else {
            println!("--- telemetry ---");
            print!("{}", reg.summary());
        }
    }

    /// End a section (human output separates sections with a blank line).
    pub fn end_section(&self) {
        if !self.json {
            println!();
        }
    }
}
