//! # gdmp-bench — harness that regenerates every figure and table
//!
//! Each public function reproduces one artifact of the paper's evaluation;
//! the `figures` binary prints them in the paper's layout, and the
//! Criterion benches reuse the same code for component micro-benchmarks.

pub mod catalog;
pub mod cli;
pub mod compare;
pub mod figures;
pub mod grid;
pub mod parallel;
pub mod report;
pub mod tables;
pub mod timeline;

pub use catalog::{
    run_catalog_bench, run_catalog_grid, CatalogBenchPoint, CATALOG_LOOKUPS, CATALOG_SITES,
};
pub use cli::ScenarioArgs;
pub use compare::{compare_catalog, compare_fetch, compare_grid, compare_simnet, Gate, Tolerances};
pub use figures::{fig_sweep, fig_sweep_on, FigRow};
pub use grid::{
    run_control_plane_bench, run_control_plane_grid, run_grid_soak_bench, run_grid_soak_points,
    ControlPlanePoint, GridSoakPoint, GRID_OPS, GRID_SITES, SOAK_SCALES,
};
pub use parallel::{default_workers, par_map, workers_for};
pub use report::{Cell, Report};
pub use tables::{
    buffer_sweep, motivation_table, objcost_table, objrep_table, staging_table, stripe_table,
    tuning_table, BufferRow, MotivationRow, ObjCostRow, ObjRepRow, StageRow, StripeRow,
    TuningReport,
};
pub use timeline::{render_timeline, timeline_tsv};
