//! The paper's tabular/textual results: tuning conclusions (§6), the
//! buffer formula, the object vs file replication analysis (§5.1), the
//! copier cost analysis (§5.3), and the staging behaviour (§4.4).

use gdmp::{Grid, ObjectReplicationConfig, SiteConfig};
use gdmp_gridftp::sim::WanProfile;
use gdmp_gridftp::tuning;
use gdmp_objectstore::{CopierSpec, LogicalOid, ObjectKind};
use gdmp_simnet::time::SimDuration;
use gdmp_workloads::{Placement, Population, MB};

use crate::parallel::{default_workers, par_map};

// ---------------------------------------------------------------- tuning

/// The Section 6 conclusions, measured: (a) proper buffer tuning is the
/// single most important factor; (b) 2–3 tuned streams gain ~25% over one;
/// (c) enough untuned streams match tuned throughput.
#[derive(Debug, Clone)]
pub struct TuningReport {
    pub untuned_by_streams: Vec<(u32, f64)>,
    pub tuned_by_streams: Vec<(u32, f64)>,
    /// Streams of untuned needed to match 2 tuned streams.
    pub untuned_streams_matching_two_tuned: Option<u32>,
    /// Gain of best-of-{2,3} tuned streams over one tuned stream.
    pub tuned_2_3_gain_over_1: f64,
    /// The paper's formula output for this path.
    pub optimal_buffer_bytes: u64,
}

pub fn tuning_table(file_bytes: u64, max_streams: u32) -> TuningReport {
    let profile = WanProfile::cern_anl_production();
    let streams: Vec<u32> = (1..=max_streams).collect();
    let run = |buffer: u64| -> Vec<(u32, f64)> {
        par_map(&streams, default_workers(), |&n| {
            (n, profile.simulate_transfer(file_bytes, n, buffer).throughput_mbps())
        })
    };
    let untuned = run(64 * 1024);
    let tuned = run(MB);
    let two_tuned = tuned.iter().find(|(n, _)| *n == 2).map(|(_, t)| *t).unwrap_or(0.0);
    let matching = untuned.iter().find(|(_, t)| *t >= two_tuned).map(|(n, _)| *n);
    let one_tuned = tuned[0].1;
    let best_23 =
        tuned.iter().filter(|(n, _)| *n == 2 || *n == 3).map(|(_, t)| *t).fold(f64::MIN, f64::max);
    let advice = tuning::tune(&profile, 10 * MB, 1);
    TuningReport {
        untuned_by_streams: untuned,
        tuned_by_streams: tuned,
        untuned_streams_matching_two_tuned: matching,
        tuned_2_3_gain_over_1: best_23 / one_tuned - 1.0,
        optimal_buffer_bytes: advice.optimal_buffer,
    }
}

// ---------------------------------------------------------------- buffer

/// One row of the buffer-size sweep.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct BufferRow {
    pub buffer: u64,
    pub mbps: f64,
}

/// Sweep socket buffers for a single stream, locating the knee the
/// formula `RTT × bottleneck` predicts (~703 KB on the paper's path).
pub fn buffer_sweep(file_bytes: u64) -> Vec<BufferRow> {
    let profile = WanProfile::cern_anl_production();
    let kbs = [16u64, 32, 64, 128, 256, 512, 704, 1024, 2048, 4096];
    par_map(&kbs, default_workers(), |&kb| {
        let buffer = kb * 1024;
        BufferRow {
            buffer,
            mbps: profile.simulate_transfer(file_bytes, 1, buffer).throughput_mbps(),
        }
    })
}

// ---------------------------------------------------------------- objrep

/// One row of the Section 5.1 comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ObjRepRow {
    /// Fraction of the event sample selected.
    pub selectivity: f64,
    pub objects: usize,
    /// Bytes whole-file replication must ship (greedy file cover).
    pub file_level_bytes: u64,
    /// Bytes object replication ships (extraction files).
    pub object_level_bytes: u64,
    /// file/object ratio (≫1 at sparse selectivities).
    pub ratio: f64,
    /// End-to-end pipeline makespan of the object replication.
    pub objrep_makespan_s: f64,
}

/// The sparse-selection experiment: a population of AOD objects clustered
/// into files; selections of decreasing density replicated to a second
/// site both ways.
pub fn objrep_table(events: u64, selectivities: &[f64], placement: Placement) -> Vec<ObjRepRow> {
    let mut out = Vec::new();
    for &sel in selectivities {
        // A fresh grid per point: replication has state.
        let mut grid = Grid::new("cms");
        grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
        grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
        grid.trust_all();
        let population = Population {
            events,
            kinds: &[ObjectKind::Aod],
            placement,
            size_scale: 0.1, // 1 KB AODs keep the bench in memory
        };
        population.build(&mut grid, "cern").expect("population builds");
        // A *fresh* pseudo-random selection (the paper: "a completely
        // fresh event set which nobody else has worked on yet") — never a
        // regular stride, which would alias with placement policies.
        let keep = (u64::MAX as f64 * sel) as u64;
        let wanted: Vec<LogicalOid> = (0..events)
            .filter(|&e| e.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) <= keep)
            .map(|e| LogicalOid::new(e, ObjectKind::Aod))
            .collect();
        let cover = grid.file_level_cover(&wanted);
        assert!(cover.uncovered.is_empty(), "population covers the selection");
        let report = grid
            .object_replicate("anl", &wanted, ObjectReplicationConfig::default())
            .expect("object replication succeeds");
        out.push(ObjRepRow {
            selectivity: sel,
            objects: wanted.len(),
            file_level_bytes: cover.total_bytes,
            object_level_bytes: report.bytes_moved,
            ratio: cover.total_bytes as f64 / report.bytes_moved.max(1) as f64,
            objrep_makespan_s: report.makespan.as_secs_f64(),
        });
    }
    out
}

// ---------------------------------------------------------------- objcost

/// One row of the Section 5.3 server-cost analysis.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ObjCostRow {
    pub copier_bytes_per_sec: u64,
    /// Copier CPU seconds per network megabyte (file replication: ~0).
    pub cpu_s_per_net_mb: f64,
    /// Pipelined makespan (s).
    pub pipelined_s: f64,
    /// Sequential copy-then-send makespan (s).
    pub sequential_s: f64,
    /// Is the copier the bottleneck (copy slower than the network)?
    pub copier_bound: bool,
}

/// Sweep copier host capability against a fixed WAN share, reproducing
/// "as long as the object replication server is powerful enough ... the
/// object copying actions do not form a bottleneck".
pub fn objcost_table(copier_speeds_bytes_per_sec: &[u64]) -> Vec<ObjCostRow> {
    let mut out = Vec::new();
    for &speed in copier_speeds_bytes_per_sec {
        let mut grid = Grid::new("cms");
        grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
        grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
        grid.trust_all();
        let population = Population::aod(2_000, 200).scaled(0.1);
        population.build(&mut grid, "cern").expect("population builds");
        let wanted: Vec<LogicalOid> =
            (0..2_000).step_by(2).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let copier =
            CopierSpec { bytes_per_sec: speed, per_object_ns: 20_000, max_file_bytes: 256 * 1024 };
        let piped = grid
            .object_replicate("anl", &wanted, ObjectReplicationConfig { copier, pipelined: true })
            .expect("objrep");
        // Fresh grid for the sequential variant.
        let mut grid2 = Grid::new("cms");
        grid2.add_site(SiteConfig::named("cern", "cern.ch", 1));
        grid2.add_site(SiteConfig::named("anl", "anl.gov", 2));
        grid2.trust_all();
        population.build(&mut grid2, "cern").expect("population builds");
        let seq = grid2
            .object_replicate("anl", &wanted, ObjectReplicationConfig { copier, pipelined: false })
            .expect("objrep");
        out.push(ObjCostRow {
            copier_bytes_per_sec: speed,
            cpu_s_per_net_mb: piped.copier_cpu.as_secs_f64()
                / (piped.bytes_moved as f64 / 1e6).max(1e-9),
            pipelined_s: piped.makespan.as_secs_f64(),
            sequential_s: seq.makespan.as_secs_f64(),
            copier_bound: piped.copier_cpu > piped.transfer_time,
        });
    }
    out
}

// ---------------------------------------------------------------- staging

/// One row of the staging-latency table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StageRow {
    pub file_mb: u64,
    pub residence: &'static str,
    pub stage_latency_s: f64,
    pub total_time_s: f64,
}

/// Disk-hit vs tape-stage replication latency (Section 4.4): files that
/// fell out of the source's disk pool must be staged before the WAN
/// transfer starts.
pub fn staging_table(file_mb: u64) -> Vec<StageRow> {
    let bytes = file_mb * MB;
    let mut grid = Grid::new("cms");
    // Pool fits exactly one file: publishing the second evicts the first.
    grid.add_site(SiteConfig::named("cern", "cern.ch", 1).with_pool(bytes + bytes / 2));
    grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
    grid.trust_all();
    grid.publish_file("cern", "cold.dat", bytes_of(bytes, 1), "flat").expect("publish");
    grid.publish_file("cern", "hot.dat", bytes_of(bytes, 2), "flat").expect("publish");
    let mut out = Vec::new();
    // hot.dat is disk-resident.
    let r = grid.replicate("anl", "hot.dat").expect("replicate hot");
    out.push(StageRow {
        file_mb,
        residence: "disk hit",
        stage_latency_s: r.stage_latency.as_secs_f64(),
        total_time_s: r.total_time().as_secs_f64(),
    });
    // cold.dat was evicted: the request triggers a tape stage first.
    let r = grid.replicate("anl", "cold.dat").expect("replicate cold");
    out.push(StageRow {
        file_mb,
        residence: "tape stage",
        stage_latency_s: r.stage_latency.as_secs_f64(),
        total_time_s: r.total_time().as_secs_f64(),
    });
    out
}

// ------------------------------------------------------------- motivation

/// One row of the "why replicate at all" comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MotivationRow {
    pub objects: usize,
    /// Per-object remote access (AMS-over-WAN model): one request round
    /// trip per object.
    pub remote_access_s: f64,
    /// Object replication makespan + (negligible) local reads.
    pub replicate_then_local_s: f64,
    pub speedup: f64,
}

/// The paper's §2.1 motivation, quantified: "the object persistency layers
/// ... do not have the native ability to efficiently access objects on
/// remote sites \[YoMo00\], as they were built under the assumption that a
/// low latency exists when accessing storage." Each remote object read
/// costs a WAN round trip (the AMS request/response pattern measured in
/// \[SaMo00\]); replication pays its cost once.
pub fn motivation_table(counts: &[usize]) -> Vec<MotivationRow> {
    let profile = WanProfile::cern_anl_production();
    let rtt = profile.rtt().as_secs_f64();
    const SERVER_OVERHEAD_S: f64 = 0.001; // per-request page service
    let mut out = Vec::new();
    for &n in counts {
        // Remote model: serial navigational access, one object per RTT.
        let remote = n as f64 * (rtt + SERVER_OVERHEAD_S);
        // Replication side: a real object replication of n scaled AODs.
        let mut grid = Grid::new("cms");
        grid.add_site(SiteConfig::named("cern", "cern.ch", 1));
        grid.add_site(SiteConfig::named("anl", "anl.gov", 2));
        grid.trust_all();
        let events = (n as u64).max(1);
        Population::aod(events, events.min(1000))
            .scaled(0.1)
            .build(&mut grid, "cern")
            .expect("population builds");
        let wanted: Vec<LogicalOid> =
            (0..events).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let report = grid
            .object_replicate("anl", &wanted, ObjectReplicationConfig::default())
            .expect("objrep");
        // Local reads after replication are in-memory page hits: ~10 µs.
        let local = report.makespan.as_secs_f64() + n as f64 * 1e-5;
        out.push(MotivationRow {
            objects: n,
            remote_access_s: remote,
            replicate_then_local_s: local,
            speedup: remote / local.max(1e-9),
        });
    }
    out
}

// ---------------------------------------------------------------- stripe

/// One row of the striped-transfer table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StripeRow {
    pub nodes: u32,
    pub streams_per_node: u32,
    pub mbps: f64,
}

/// Striped transfer ("m hosts to n hosts"): NIC-limited hosts feeding the
/// shared WAN. One host caps at its NIC; stripes scale until the WAN share
/// saturates.
pub fn stripe_table(file_bytes: u64, streams_per_node: u32) -> Vec<StripeRow> {
    let profile = gdmp_gridftp::stripe::StripedProfile::nic_limited();
    [1u32, 2, 3, 4, 6, 8]
        .iter()
        .map(|&nodes| StripeRow {
            nodes,
            streams_per_node,
            mbps: profile.simulate(file_bytes, nodes, streams_per_node, MB).throughput_mbps(),
        })
        .collect()
}

fn bytes_of(n: u64, tag: u8) -> bytes::Bytes {
    bytes::Bytes::from(vec![tag; n as usize])
}

/// Convenience wrapper: `SimDuration` seconds.
pub fn secs(d: SimDuration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_conclusions_hold() {
        let t = tuning_table(25 * MB, 10);
        // (b) 2-3 tuned streams gain over a single tuned stream.
        assert!(t.tuned_2_3_gain_over_1 > 0.05, "gain {:.2}", t.tuned_2_3_gain_over_1);
        // (c) some number of untuned streams reaches 2-tuned throughput.
        assert!(t.untuned_streams_matching_two_tuned.is_some());
        // The formula lands near the BDP.
        assert!((650_000..760_000).contains(&t.optimal_buffer_bytes));
    }

    #[test]
    fn buffer_sweep_has_a_knee() {
        let rows = buffer_sweep(25 * MB);
        let small = rows.iter().find(|r| r.buffer == 16 * 1024).unwrap().mbps;
        let knee = rows.iter().find(|r| r.buffer == 704 * 1024).unwrap().mbps;
        let big = rows.iter().find(|r| r.buffer == 4096 * 1024).unwrap().mbps;
        assert!(knee > 3.0 * small, "knee {knee:.1} vs small {small:.1}");
        // Oversized buffers gain little beyond the knee.
        assert!(big < knee * 1.6, "big {big:.1} vs knee {knee:.1}");
    }

    #[test]
    fn objrep_ratio_grows_with_sparsity() {
        let rows = objrep_table(
            1_000,
            &[0.5, 0.1, 0.02],
            Placement::ByKindChunks { events_per_file: 100 },
        );
        assert!(rows[0].ratio < rows[2].ratio, "{} vs {}", rows[0].ratio, rows[2].ratio);
        // At 2% selectivity, file replication ships far more.
        assert!(rows[2].ratio > 5.0, "ratio {}", rows[2].ratio);
    }

    #[test]
    fn objcost_fast_copier_not_bottleneck() {
        let rows = objcost_table(&[100_000, 30_000_000]);
        assert!(rows[0].copier_bound, "0.1 MB/s copier should be the bottleneck");
        assert!(!rows[1].copier_bound, "30 MB/s copier should keep up");
        assert!(rows[0].cpu_s_per_net_mb > 100.0 * rows[1].cpu_s_per_net_mb);
        // Pipelining never loses.
        for r in &rows {
            assert!(r.pipelined_s <= r.sequential_s + 1e-9);
        }
    }

    #[test]
    fn motivation_crossover() {
        let rows = motivation_table(&[10, 2_000]);
        // Few objects: paying the replication setup is not worth it.
        assert!(rows[0].speedup < 1.5, "10 objects: speedup {:.2}", rows[0].speedup);
        // Thousands of objects: replication wins decisively.
        assert!(rows[1].speedup > 10.0, "2000 objects: speedup {:.2}", rows[1].speedup);
    }

    #[test]
    fn striping_scales_past_single_nic() {
        let rows = stripe_table(20 * MB, 2);
        let one = rows.iter().find(|r| r.nodes == 1).unwrap().mbps;
        let four = rows.iter().find(|r| r.nodes == 4).unwrap().mbps;
        assert!(one < 10.5, "one NIC-limited host: {one:.1}");
        assert!(four > 1.5 * one, "striping should scale: 1→{one:.1}, 4→{four:.1}");
    }

    #[test]
    fn staging_dominates_cold_replicas() {
        let rows = staging_table(4);
        assert_eq!(rows[0].residence, "disk hit");
        assert_eq!(rows[0].stage_latency_s, 0.0);
        assert!(rows[1].stage_latency_s > 0.1);
        assert!(rows[1].total_time_s > rows[0].total_time_s);
    }
}
