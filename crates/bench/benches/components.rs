//! Component micro-benchmarks: the building blocks' raw performance.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use bytes::Bytes;
use gdmp_gridftp::block::{partition, Reassembler};
use gdmp_gridftp::crc::crc32;
use gdmp_objectstore::{
    synth_payload, CopierSpec, DatabaseFile, Federation, LogicalOid, ObjectCopier, ObjectKind,
    StoredObject,
};
use gdmp_replica_catalog::service::{FileMeta, ReplicaCatalogService};
use gdmp_replica_catalog::{Filter, ReplicaCatalog};

fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    let data = vec![0xA5u8; 1 << 20];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| crc32(black_box(&data))));
    g.finish();
}

fn bench_blocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("extended_block_mode");
    let data = Bytes::from(vec![7u8; 1 << 20]);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("partition_4ch_64k", |b| b.iter(|| partition(black_box(&data), 64 * 1024, 4)));
    g.bench_function("reassemble_4ch_64k", |b| {
        let parts = partition(&data, 64 * 1024, 4);
        b.iter(|| {
            let mut r = Reassembler::new(data.len() as u64, 4);
            for p in &parts {
                for blk in p {
                    r.accept(blk).unwrap();
                }
            }
            assert!(r.is_complete());
        })
    });
    g.finish();
}

fn bench_catalog(c: &mut Criterion) {
    let mut g = c.benchmark_group("replica_catalog");
    g.bench_function("publish", |b| {
        b.iter_with_setup(
            || ReplicaCatalogService::new("GDMP", "cms").unwrap(),
            |mut svc| {
                for i in 0..100 {
                    let meta =
                        FileMeta { size: i, modified: 0, crc32: 0, file_type: "flat".into() };
                    svc.publish(Some(&format!("f{i}.db")), "cern", "u://x", &meta).unwrap();
                }
                svc
            },
        )
    });
    g.bench_function("locate_among_1000", |b| {
        let mut rc = ReplicaCatalog::new("GDMP");
        rc.create_collection("cms").unwrap();
        let names: Vec<String> = (0..1000).map(|i| format!("f{i}.db")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        rc.add_filenames("cms", &refs).unwrap();
        rc.create_location("cms", "cern", "u://cern").unwrap();
        rc.location_add_filenames("cms", "cern", &refs).unwrap();
        b.iter(|| rc.locate("cms", black_box("f500.db")).unwrap())
    });
    g.bench_function("filter_parse_eval", |b| {
        let f = Filter::parse("(&(objectclass=GlobusFile)(!(size=10))(name=f*))").unwrap();
        let attrs = gdmp_replica_catalog::ldap::attrs(&[
            ("objectclass", "GlobusFile"),
            ("size", "42"),
            ("name", "f500.db"),
        ]);
        b.iter(|| black_box(&f).matches(black_box(&attrs)))
    });
    g.finish();
}

fn bench_objectstore(c: &mut Criterion) {
    let mut g = c.benchmark_group("objectstore");
    let build = || {
        let mut fed = Federation::new("bench");
        fed.create_database("d.db").unwrap();
        for e in 0..2_000u64 {
            let logical = LogicalOid::new(e, ObjectKind::Aod);
            fed.store(
                "d.db",
                (e % 8) as u32,
                StoredObject {
                    logical,
                    version: 1,
                    payload: synth_payload(logical, 1, 512),
                    assocs: vec![],
                },
            )
            .unwrap();
        }
        fed
    };
    g.bench_function("copier_extract_500_of_2000", |b| {
        let mut fed = build();
        let wanted: Vec<_> =
            (0..2_000).step_by(4).map(|e| LogicalOid::new(e, ObjectKind::Aod)).collect();
        let copier = ObjectCopier::new(CopierSpec::classic());
        b.iter(|| copier.extract(&mut fed, black_box(&wanted), "x").unwrap())
    });
    g.bench_function("codec_roundtrip_2000_objects", |b| {
        let fed = build();
        let image = fed.export("d.db").unwrap();
        b.iter(|| DatabaseFile::decode(black_box(image.clone())).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crc, bench_blocks, bench_catalog, bench_objectstore
}
criterion_main!(benches);
