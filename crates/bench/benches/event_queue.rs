//! Event-queue micro-benchmarks: the sharded engine's flat 4-ary heap +
//! hierarchical timer wheel (`gdmp_simnet::engine::EventQueue`) against a
//! plain `std::collections::BinaryHeap`, on the TCP simulator's actual
//! event mix: a steady band of near-future data/ACK events plus RTO
//! timers parked ~1 s out, re-armed on ACK arrival with lazy cancellation
//! — stale generations accumulate until the clock reaches them, exactly
//! the population the wheel keeps out of the comparison structure.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gdmp_simnet::engine::EventQueue;
use gdmp_simnet::time::SimTime;

const FLOWS: u64 = 64;
const OPS: u64 = 40_000;
const RTO_NS: u64 = 1_000_000_000;

/// Deterministic per-op jitter: an LCG, so both queues see the same mix.
#[inline]
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// The simulator's churn pattern: pop the next event, schedule one near
/// successor (µs ahead), and every 4th op re-arm a far RTO timer (the old
/// generation stays parked, as under lazy cancellation).
fn churn_indexed() -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = 0x9E3779B97F4A7C15u64;
    for f in 0..FLOWS {
        q.schedule(SimTime(1 + f), f);
        q.schedule(SimTime(RTO_NS + f * 1000), f | 1 << 32);
    }
    let mut acc = 0u64;
    for op in 0..OPS {
        let (t, ev) = q.pop().expect("queue never drains");
        acc = acc.wrapping_add(t.nanos() ^ ev);
        let jitter = lcg(&mut rng) % 50_000;
        q.schedule(SimTime(t.nanos() + 1_000 + jitter), ev);
        if op % 4 == 0 {
            q.schedule(SimTime(t.nanos() + RTO_NS + jitter), ev | 1 << 33);
        }
    }
    acc
}

/// The identical churn on a `BinaryHeap` carrying the sharded engine's
/// full determinism key (`at << 64 | created`, then `seq`) — what a naive
/// implementation of the cross-shard ordering contract would use. This is
/// the apples-to-apples structural baseline.
fn churn_binary_heap_wide_key() -> u64 {
    let mut q: BinaryHeap<Reverse<(u128, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |q: &mut BinaryHeap<Reverse<(u128, u64, u64)>>, at: u64, ev: u64| {
        q.push(Reverse(((u128::from(at) << 64) | u128::from(seq), seq, ev)));
        seq += 1;
    };
    let mut rng = 0x9E3779B97F4A7C15u64;
    for f in 0..FLOWS {
        push(&mut q, 1 + f, f);
        push(&mut q, RTO_NS + f * 1000, f | 1 << 32);
    }
    let mut acc = 0u64;
    for op in 0..OPS {
        let Reverse((key, _, ev)) = q.pop().expect("queue never drains");
        let t = (key >> 64) as u64;
        acc = acc.wrapping_add(t ^ ev);
        let jitter = lcg(&mut rng) % 50_000;
        push(&mut q, t + 1_000 + jitter, ev);
        if op % 4 == 0 {
            push(&mut q, t + RTO_NS + jitter, ev | 1 << 33);
        }
    }
    acc
}

/// The identical churn on `BinaryHeap<Reverse<(at, seq, payload)>>` — the
/// pre-sharding engine's storage, with its narrower single-shard FIFO key.
fn churn_binary_heap() -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |q: &mut BinaryHeap<Reverse<(u64, u64, u64)>>, at: u64, ev: u64| {
        q.push(Reverse((at, seq, ev)));
        seq += 1;
    };
    let mut rng = 0x9E3779B97F4A7C15u64;
    for f in 0..FLOWS {
        push(&mut q, 1 + f, f);
        push(&mut q, RTO_NS + f * 1000, f | 1 << 32);
    }
    let mut acc = 0u64;
    for op in 0..OPS {
        let Reverse((t, _, ev)) = q.pop().expect("queue never drains");
        acc = acc.wrapping_add(t ^ ev);
        let jitter = lcg(&mut rng) % 50_000;
        push(&mut q, t + 1_000 + jitter, ev);
        if op % 4 == 0 {
            push(&mut q, t + RTO_NS + jitter, ev | 1 << 33);
        }
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(OPS));
    g.bench_function("indexed_heap_plus_wheel", |b| b.iter(|| black_box(churn_indexed())));
    g.bench_function("std_binary_heap_wide_key", |b| {
        b.iter(|| black_box(churn_binary_heap_wide_key()))
    });
    g.bench_function("std_binary_heap_narrow_key", |b| b.iter(|| black_box(churn_binary_heap())));
    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
