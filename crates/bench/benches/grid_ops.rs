//! Grid-level benches: replication pipelines and the remaining DESIGN.md
//! ablations (copier pipelining, eviction policy, association closure).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use bytes::Bytes;
use gdmp::{Grid, ObjectReplicationConfig, SiteConfig};
use gdmp_mass_storage::pool::{DiskPool, EvictionPolicy};
use gdmp_objectstore::{CopierSpec, LogicalOid, ObjectKind};
use gdmp_workloads::Population;

fn two_site_grid() -> Grid {
    let mut g = Grid::new("cms");
    g.add_site(SiteConfig::named("cern", "cern.ch", 1));
    g.add_site(SiteConfig::named("anl", "anl.gov", 2));
    g.trust_all();
    g
}

fn bench_file_replication(c: &mut Criterion) {
    c.bench_function("replicate_2MB_flat_file", |b| {
        b.iter_with_setup(
            || {
                let mut g = two_site_grid();
                g.publish_file("cern", "f.dat", Bytes::from(vec![1u8; 2 << 20]), "flat").unwrap();
                g
            },
            |mut g| {
                g.replicate("anl", "f.dat").unwrap();
                g
            },
        )
    });
}

/// Ablation: pipelined vs sequential copier/transfer overlap.
fn bench_ablate_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_pipeline");
    for &(label, pipelined) in &[("pipelined", true), ("sequential", false)] {
        g.bench_function(label, |b| {
            b.iter_with_setup(
                || {
                    let mut grid = two_site_grid();
                    Population::aod(1_000, 100).scaled(0.05).build(&mut grid, "cern").unwrap();
                    grid
                },
                |mut grid| {
                    let wanted: Vec<_> = (0..1_000)
                        .step_by(3)
                        .map(|e| LogicalOid::new(e, ObjectKind::Aod))
                        .collect();
                    let cfg = ObjectReplicationConfig {
                        copier: CopierSpec {
                            bytes_per_sec: 2_000_000,
                            per_object_ns: 20_000,
                            max_file_bytes: 64 * 1024,
                        },
                        pipelined,
                    };
                    let r = grid.object_replicate("anl", &wanted, cfg).unwrap();
                    black_box(r.makespan);
                    grid
                },
            )
        });
    }
    g.finish();
}

/// Ablation: disk-pool eviction policy under a Zipf-ish scan workload.
fn bench_ablate_eviction(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_eviction");
    for &(label, policy) in &[("lru", EvictionPolicy::Lru), ("fifo", EvictionPolicy::Fifo)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                let mut pool = DiskPool::new(64 * 1024, policy);
                // 128 files of 1 KB into a 64 KB pool, with re-touches of a
                // hot head.
                for i in 0..128u64 {
                    let name = format!("f{i}");
                    pool.put(&name, Bytes::from(vec![0u8; 1024])).unwrap();
                    for h in 0..4 {
                        let hot = format!("f{}", (i / 8) * 8 + h % 4);
                        let _ = pool.get(&hot);
                    }
                }
                black_box(pool.stats.evictions)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_file_replication, bench_ablate_pipeline, bench_ablate_eviction
}
criterion_main!(benches);
