//! Transfer-level benches: reduced-size figure points and the design
//! ablations called out in DESIGN.md §6. Criterion measures the *simulator*
//! cost; the printed simulated throughputs are the scientific output (see
//! the `figures` binary for the full-size versions).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use gdmp_gridftp::sim::WanProfile;
use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FlowSpec, Network};
use gdmp_simnet::time::{SimDuration, SimTime};

const MB: u64 = 1024 * 1024;

/// Reduced Figure-5/6 points: cost of simulating a 5 MB transfer at
/// several stream counts and both buffer settings.
fn bench_fig_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_transfer_5MB");
    let profile = WanProfile::cern_anl_production();
    for &streams in &[1u32, 4, 8] {
        for &(label, buffer) in &[("untuned64k", 64 * 1024u64), ("tuned1M", MB)] {
            g.bench_with_input(BenchmarkId::new(label, streams), &streams, |b, &n| {
                b.iter(|| profile.simulate_transfer(black_box(5 * MB), n, buffer))
            });
        }
    }
    g.finish();
}

/// Ablation: staggered vs simultaneous parallel-stream opens.
fn bench_ablate_stagger(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_stagger");
    for &(label, stagger_ms) in &[("simultaneous", 0u64), ("staggered137ms", 137)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut profile = WanProfile::cern_anl_production();
                profile.stream_stagger = SimDuration::from_millis(stagger_ms);
                profile.simulate_transfer(black_box(5 * MB), 6, 64 * 1024)
            })
        });
    }
    g.finish();
}

/// Ablation: drop-tail queue depth at the bottleneck (BDP fractions).
fn bench_ablate_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_queue_depth");
    for &q in &[64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let mut spec = LinkSpec::cern_anl();
                spec.queue_capacity = q;
                let mut net = Network::single_link(spec);
                net.add_flow(FlowSpec::transfer(5 * MB, MB).open_at(SimTime::ZERO));
                net.run()
            })
        });
    }
    g.finish();
}

/// Raw event-processing rate of the discrete-event engine.
fn bench_engine_rate(c: &mut Criterion) {
    c.bench_function("des_events_per_5MB_transfer", |b| {
        b.iter(|| {
            let mut net = Network::single_link(LinkSpec::cern_anl());
            net.add_flow(FlowSpec::transfer(5 * MB, 256 * 1024));
            net.run();
            net.events_processed()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig_points, bench_ablate_stagger, bench_ablate_queue, bench_engine_rate
}
criterion_main!(benches);
