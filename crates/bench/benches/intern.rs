//! Interner micro-benches: the hot-path probe primitives behind the
//! interned-id control plane, head-to-head with the string-keyed maps
//! they replaced. `bench_grid` measures the composed effect at grid
//! scale; this isolates the per-probe costs (owned-tuple key allocation
//! vs `try_id` + id-tuple hash).

use std::collections::BTreeMap;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gdmp_intern::{SiteId, Symbol, SymbolTable};

const SCALES: [usize; 3] = [50, 100, 200];

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("site{i:03}")).collect()
}

/// One lookup round: every (ring-neighbour) pair probed once.
fn bench_pair_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("pair_lookup");
    for &n in &SCALES {
        let site_names = names(n);

        // Before: owned `(String, String)` keys, a fresh tuple per probe.
        let string_map: BTreeMap<(String, String), u64> = (0..n)
            .map(|i| ((site_names[i].clone(), site_names[(i + 1) % n].clone()), i as u64))
            .collect();
        g.bench_with_input(BenchmarkId::new("string_keyed", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                for i in 0..n {
                    let a: &str = &site_names[i];
                    let z: &str = &site_names[(i + 1) % n];
                    sum += string_map
                        .get(&(black_box(a).to_string(), black_box(z).to_string()))
                        .copied()
                        .unwrap_or(0);
                }
                sum
            })
        });

        // After: intern once at the boundary, probe with `Copy` id tuples.
        let mut table: SymbolTable<SiteId> = SymbolTable::new();
        for name in &site_names {
            table.intern(name);
        }
        let id_map: std::collections::HashMap<(SiteId, SiteId), u64> = (0..n)
            .map(|i| {
                let a = table.try_id(&site_names[i]).unwrap();
                let z = table.try_id(&site_names[(i + 1) % n]).unwrap();
                ((a, z), i as u64)
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("interned", n), &n, |b, _| {
            b.iter(|| {
                let mut sum = 0u64;
                for i in 0..n {
                    let a = table.try_id(black_box(&site_names[i])).unwrap();
                    let z = table.try_id(black_box(&site_names[(i + 1) % n])).unwrap();
                    sum += id_map.get(&(a, z)).copied().unwrap_or(0);
                }
                sum
            })
        });
    }
    g.finish();
}

/// The roster sweep: what `advance` used to pay per tick (clone every
/// name) vs iterating the interned roster in place.
fn bench_roster_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("roster_sweep");
    for &n in &SCALES {
        let site_names = names(n);
        let roster: BTreeMap<String, usize> =
            site_names.iter().enumerate().map(|(i, s)| (s.clone(), i)).collect();
        g.bench_with_input(BenchmarkId::new("clone_names", n), &n, |b, _| {
            b.iter(|| {
                let cloned: Vec<String> = roster.keys().cloned().collect();
                cloned.iter().map(|s| s.len() as u64).sum::<u64>()
            })
        });

        let mut table: SymbolTable<SiteId> = SymbolTable::new();
        for name in &site_names {
            table.intern(name);
        }
        let ids: Vec<SiteId> = (0..n as u32).map(SiteId::from_index).collect();
        g.bench_with_input(BenchmarkId::new("id_slice", n), &n, |b, _| {
            b.iter(|| ids.iter().map(|&id| table.resolve(black_box(id)).len() as u64).sum::<u64>())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pair_lookup, bench_roster_sweep);
criterion_main!(benches);
