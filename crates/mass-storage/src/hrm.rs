//! The Hierarchical Resource Manager plug-in interface (Section 4.4).
//!
//! GDMP interfaces to Mass Storage Systems through HRM \[Bern00\]: a uniform
//! API over "disk pool in front of an archive tier". A file request either
//! hits the disk cache or triggers an explicit stage from the archive into
//! the pool; GDMP starts the WAN transfer only once the file is on disk.
//!
//! The core owns the staging rules, the disk cache, and the statistics;
//! the archive tier is any [`StorageBackend`] adapter (tape library,
//! nearline disk array, remote object store — see [`crate::backend`]).

use bytes::Bytes;
use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;

use crate::backend::{BackendError, StorageBackend, StorageConfig};
use crate::pool::{DiskPool, EvictionPolicy, PoolError};
use crate::tape::TapeSpec;

/// Where a requested file was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residence {
    /// Already in the disk pool — no staging cost.
    DiskHit,
    /// Staged from the archive tier into the pool.
    StagedFromTape,
}

/// Outcome of a file request.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    pub residence: Residence,
    /// Latency paid before the file was readable on disk.
    pub latency: SimDuration,
    pub data: Bytes,
}

/// HRM errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HrmError {
    Pool(PoolError),
    Backend(BackendError),
    /// Neither on disk nor in the archive.
    Unknown(String),
}

impl std::fmt::Display for HrmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HrmError::Pool(e) => write!(f, "disk pool: {e}"),
            HrmError::Backend(e) => write!(f, "archive: {e}"),
            HrmError::Unknown(n) => write!(f, "file unknown to the MSS: {n}"),
        }
    }
}

impl std::error::Error for HrmError {}

impl From<PoolError> for HrmError {
    fn from(e: PoolError) -> Self {
        HrmError::Pool(e)
    }
}

impl From<BackendError> for HrmError {
    fn from(e: BackendError) -> Self {
        HrmError::Backend(e)
    }
}

/// HRM statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HrmStats {
    pub disk_hits: u64,
    pub stage_requests: u64,
    pub total_stage_latency_ns: u64,
    /// Cost units charged by the archive backend across all operations.
    pub archive_cost_units: u64,
}

/// Disk pool + archive backend under a single staging API.
#[derive(Debug)]
pub struct HierarchicalStorage {
    pub pool: DiskPool,
    /// The archive tier (tape library unless configured otherwise).
    pub archive: Box<dyn StorageBackend>,
    pub stats: HrmStats,
    /// Telemetry sink; disabled (no-op) unless attached.
    telemetry: Registry,
}

impl HierarchicalStorage {
    /// The historical constructor: disk pool in front of a tape library.
    pub fn new(pool_capacity: u64, policy: EvictionPolicy, tape_spec: TapeSpec) -> Self {
        Self::with_config(pool_capacity, policy, &StorageConfig::Tape(tape_spec))
    }

    /// Disk pool in front of the adapter a [`StorageConfig`] describes.
    pub fn with_config(pool_capacity: u64, policy: EvictionPolicy, config: &StorageConfig) -> Self {
        Self::with_backend(pool_capacity, policy, config.build())
    }

    /// Disk pool in front of an explicit adapter instance.
    pub fn with_backend(
        pool_capacity: u64,
        policy: EvictionPolicy,
        archive: Box<dyn StorageBackend>,
    ) -> Self {
        HierarchicalStorage {
            pool: DiskPool::new(pool_capacity, policy),
            archive,
            stats: HrmStats::default(),
            telemetry: Registry::default(),
        }
    }

    /// Attach a telemetry registry; staging requests will record hit/stage
    /// counters and a staging-latency histogram into it.
    pub fn set_telemetry(&mut self, reg: Registry) {
        self.telemetry = reg;
    }

    /// Store a new file on disk; when `archive` is set it is also written
    /// through to the archive tier (so eviction from the pool is safe).
    /// Returns the archival latency (zero for disk-only files).
    pub fn store(
        &mut self,
        name: &str,
        data: Bytes,
        archive: bool,
    ) -> Result<SimDuration, HrmError> {
        self.pool.put(name, data.clone())?;
        if archive {
            let receipt = self.archive.store(name, data)?;
            self.stats.archive_cost_units += receipt.cost;
            Ok(receipt.latency)
        } else {
            Ok(SimDuration::ZERO)
        }
    }

    /// `file stage request`: make `name` resident on disk, staging from
    /// the archive if needed, and report the latency paid.
    pub fn request(&mut self, name: &str) -> Result<StageOutcome, HrmError> {
        if let Some(data) = self.pool.get(name) {
            self.stats.disk_hits += 1;
            self.telemetry.counter_add("hrm_requests", &[("residence", "disk")], 1);
            return Ok(StageOutcome {
                residence: Residence::DiskHit,
                latency: SimDuration::ZERO,
                data,
            });
        }
        if !self.archive.contains(name) {
            return Err(HrmError::Unknown(name.to_string()));
        }
        let (data, receipt) = self.archive.fetch(name)?;
        let latency = receipt.latency;
        // Staging requires pool space: evict per policy (the pool "cache").
        self.pool.put(name, data.clone())?;
        self.stats.stage_requests += 1;
        self.stats.total_stage_latency_ns += latency.nanos();
        self.stats.archive_cost_units += receipt.cost;
        self.telemetry.counter_add("hrm_requests", &[("residence", "tape")], 1);
        self.telemetry.observe("hrm_stage_latency_ns", &[], latency.nanos());
        Ok(StageOutcome { residence: Residence::StagedFromTape, latency, data })
    }

    /// Is the file known at all (disk or archive)?
    pub fn knows(&self, name: &str) -> bool {
        self.pool.contains(name) || self.archive.contains(name)
    }

    /// Is the file currently resident on disk (no staging needed)?
    pub fn on_disk(&self, name: &str) -> bool {
        self.pool.contains(name)
    }

    /// Is the file held by the archive tier (staging would succeed)?
    pub fn archived(&self, name: &str) -> bool {
        self.archive.contains(name)
    }

    /// Files in the archive but not currently disk-resident: the staging
    /// backlog a sweep of requests would have to pay for. This is what the
    /// `tape_stage_backlog` time-series samples.
    pub fn stage_backlog(&self) -> usize {
        self.archive.file_names().iter().filter(|n| !self.pool.contains(n)).count()
    }

    /// Drop a file everywhere.
    pub fn purge(&mut self, name: &str) -> Result<(), HrmError> {
        let mut found = false;
        if self.pool.contains(name) {
            self.pool.remove(name)?;
            found = true;
        }
        if self.archive.contains(name) {
            self.archive.evict(name)?;
            found = true;
        }
        if found {
            Ok(())
        } else {
            Err(HrmError::Unknown(name.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DiskArraySpec, ObjectStoreSpec};

    fn tape_config() -> StorageConfig {
        StorageConfig::Tape(TapeSpec {
            mount_time: SimDuration::from_secs(60),
            seek_bytes_per_sec: 100_000_000,
            stream_bytes_per_sec: 10_000_000,
            drives: 1,
            tape_capacity: 1 << 30,
        })
    }

    fn hrm(pool: u64) -> HierarchicalStorage {
        HierarchicalStorage::with_config(pool, EvictionPolicy::Lru, &tape_config())
    }

    #[test]
    fn disk_hit_is_free() {
        let mut h = hrm(1000);
        h.store("a", Bytes::from(vec![0u8; 100]), true).unwrap();
        let o = h.request("a").unwrap();
        assert_eq!(o.residence, Residence::DiskHit);
        assert_eq!(o.latency, SimDuration::ZERO);
        assert_eq!(h.stats.disk_hits, 1);
    }

    #[test]
    fn evicted_file_stages_back_from_tape() {
        let mut h = hrm(250);
        h.store("a", Bytes::from(vec![1u8; 100]), true).unwrap();
        h.store("b", Bytes::from(vec![2u8; 100]), true).unwrap();
        h.store("c", Bytes::from(vec![3u8; 100]), true).unwrap(); // evicts a
        assert!(!h.on_disk("a"));
        assert!(h.knows("a"));
        let o = h.request("a").unwrap();
        assert_eq!(o.residence, Residence::StagedFromTape);
        // Single drive, single tape: no mount, but seek + stream are paid.
        assert!(o.latency > SimDuration::ZERO, "staging latency expected");
        assert_eq!(o.data[0], 1);
        assert!(h.on_disk("a"));
    }

    #[test]
    fn non_archived_file_is_lost_on_eviction() {
        let mut h = hrm(250);
        h.store("volatile", Bytes::from(vec![9u8; 100]), false).unwrap();
        h.store("b", Bytes::from(vec![0u8; 100]), false).unwrap();
        h.store("c", Bytes::from(vec![0u8; 100]), false).unwrap();
        h.store("d", Bytes::from(vec![0u8; 100]), false).unwrap(); // evicts volatile
        assert!(matches!(h.request("volatile"), Err(HrmError::Unknown(_))));
    }

    #[test]
    fn purge_removes_everywhere() {
        let mut h = hrm(1000);
        h.store("a", Bytes::from(vec![0u8; 10]), true).unwrap();
        h.purge("a").unwrap();
        assert!(!h.knows("a"));
        assert!(matches!(h.purge("a"), Err(HrmError::Unknown(_))));
    }

    #[test]
    fn stage_latency_accumulates_in_stats() {
        let mut h = hrm(150);
        h.store("a", Bytes::from(vec![0u8; 100]), true).unwrap();
        h.store("b", Bytes::from(vec![0u8; 100]), true).unwrap(); // evicts a
        h.request("a").unwrap(); // stage
        assert_eq!(h.stats.stage_requests, 1);
        assert!(h.stats.total_stage_latency_ns > 0);
        assert!(h.stats.archive_cost_units > 0, "archive ops must charge cost units");
    }

    #[test]
    fn staging_works_identically_over_every_adapter() {
        // The HRM's staging behaviour (evict → request → stage back) is
        // adapter-independent; only the latency/cost numbers differ.
        for config in [
            tape_config(),
            StorageConfig::DiskArray(DiskArraySpec::commodity()),
            StorageConfig::ObjectStore(ObjectStoreSpec::remote()),
        ] {
            let mut h = HierarchicalStorage::with_config(250, EvictionPolicy::Lru, &config);
            h.store("a", Bytes::from(vec![1u8; 100]), true).unwrap();
            h.store("b", Bytes::from(vec![2u8; 100]), true).unwrap();
            h.store("c", Bytes::from(vec![3u8; 100]), true).unwrap(); // evicts a
            assert!(!h.on_disk("a"), "{}: a should be evicted", config.kind());
            let o = h.request("a").unwrap();
            assert_eq!(o.residence, Residence::StagedFromTape, "{}", config.kind());
            assert!(o.latency > SimDuration::ZERO, "{}", config.kind());
            assert_eq!(h.stage_backlog(), 1, "{}: b or c left in archive only", config.kind());
        }
    }
}
