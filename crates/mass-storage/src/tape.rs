//! Simulated tape library (the HPSS-style Mass Storage System).
//!
//! Files live on tapes; reading one costs a mount (if its tape is not in a
//! drive), a seek proportional to the file's position on tape, and a
//! streaming read at tape rate. The latencies are returned to the caller —
//! GDMP's staging behaviour (Section 4.4) is all about when these costs are
//! paid.

use std::collections::HashMap;

use bytes::Bytes;
use gdmp_simnet::time::SimDuration;

/// Physical characteristics of the library.
#[derive(Debug, Clone, Copy)]
pub struct TapeSpec {
    /// Robot fetch + drive load + thread time.
    pub mount_time: SimDuration,
    /// Seek rate along tape, bytes per second of positioning.
    pub seek_bytes_per_sec: u64,
    /// Streaming read/write rate, bytes per second.
    pub stream_bytes_per_sec: u64,
    /// Number of drives (tapes concurrently mounted).
    pub drives: usize,
    /// Capacity of a single tape in bytes.
    pub tape_capacity: u64,
}

impl TapeSpec {
    /// A turn-of-the-century library: 60 s mount, 10 MB/s stream.
    pub fn classic() -> Self {
        TapeSpec {
            mount_time: SimDuration::from_secs(60),
            seek_bytes_per_sec: 100_000_000,
            stream_bytes_per_sec: 10_000_000,
            drives: 2,
            tape_capacity: 50 * 1024 * 1024 * 1024,
        }
    }
}

/// Tape-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeError {
    NoSuchFile(String),
    AlreadyArchived(String),
}

impl std::fmt::Display for TapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapeError::NoSuchFile(n) => write!(f, "not on tape: {n}"),
            TapeError::AlreadyArchived(n) => write!(f, "already archived: {n}"),
        }
    }
}

impl std::error::Error for TapeError {}

#[derive(Debug, Clone)]
struct TapeFile {
    tape: usize,
    /// Byte offset of the file on its tape (drives seek past this much).
    offset: u64,
    data: Bytes,
}

/// Library statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TapeStats {
    pub mounts: u64,
    pub reads: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
}

/// The library: a set of tapes, a fixed number of drives, an LRU mount
/// policy.
#[derive(Debug, Clone)]
pub struct TapeLibrary {
    spec: TapeSpec,
    files: HashMap<String, TapeFile>,
    /// Write position per tape.
    tape_fill: Vec<u64>,
    /// (tape, last-use tick) for currently mounted tapes.
    mounted: Vec<(usize, u64)>,
    tick: u64,
    pub stats: TapeStats,
}

impl TapeLibrary {
    pub fn new(spec: TapeSpec) -> Self {
        assert!(spec.drives > 0, "library needs at least one drive");
        TapeLibrary {
            spec,
            files: HashMap::new(),
            tape_fill: vec![0],
            mounted: Vec::new(),
            tick: 0,
            stats: TapeStats::default(),
        }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Archived file names, sorted (deterministic iteration for observers).
    pub fn file_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    /// Archive a file; returns the write duration (stream rate).
    pub fn archive(&mut self, name: &str, data: Bytes) -> Result<SimDuration, TapeError> {
        if self.files.contains_key(name) {
            return Err(TapeError::AlreadyArchived(name.to_string()));
        }
        let size = data.len() as u64;
        // First tape with room; open a new tape when all are full.
        let tape =
            match self.tape_fill.iter().position(|&fill| fill + size <= self.spec.tape_capacity) {
                Some(t) => t,
                None => {
                    self.tape_fill.push(0);
                    self.tape_fill.len() - 1
                }
            };
        let offset = self.tape_fill[tape];
        self.tape_fill[tape] += size;
        self.stats.bytes_written += size;
        let mount = self.mount(tape);
        self.files.insert(name.to_string(), TapeFile { tape, offset, data });
        Ok(mount + SimDuration::serialization(size, self.spec.stream_bytes_per_sec * 8))
    }

    /// Read a file back; returns the data and the total staging latency
    /// (mount if needed + seek + stream).
    pub fn stage(&mut self, name: &str) -> Result<(Bytes, SimDuration), TapeError> {
        let f =
            self.files.get(name).ok_or_else(|| TapeError::NoSuchFile(name.to_string()))?.clone();
        let mount = self.mount(f.tape);
        let seek =
            SimDuration::from_secs_f64(f.offset as f64 / self.spec.seek_bytes_per_sec as f64);
        let stream =
            SimDuration::serialization(f.data.len() as u64, self.spec.stream_bytes_per_sec * 8);
        self.stats.reads += 1;
        self.stats.bytes_read += f.data.len() as u64;
        Ok((f.data, mount + seek + stream))
    }

    /// Read a file's contents without mounting, seeking, or touching any
    /// statistics — an auditor's view, not a drive operation. Used by
    /// integrity/invariant checks that must not perturb the simulation.
    pub fn peek(&self, name: &str) -> Option<Bytes> {
        self.files.get(name).map(|f| f.data.clone())
    }

    /// Remove a file from the archive.
    pub fn delete(&mut self, name: &str) -> Result<(), TapeError> {
        self.files.remove(name).map(|_| ()).ok_or_else(|| TapeError::NoSuchFile(name.to_string()))
    }

    /// Ensure `tape` is mounted; returns the cost (zero when already in a
    /// drive). The least recently used tape is dismounted when all drives
    /// are busy.
    fn mount(&mut self, tape: usize) -> SimDuration {
        self.tick += 1;
        if let Some(slot) = self.mounted.iter_mut().find(|(t, _)| *t == tape) {
            slot.1 = self.tick;
            return SimDuration::ZERO;
        }
        if self.mounted.len() >= self.spec.drives {
            let lru = self
                .mounted
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("drives are occupied");
            self.mounted.swap_remove(lru);
        }
        self.mounted.push((tape, self.tick));
        self.stats.mounts += 1;
        self.spec.mount_time
    }

    /// Tapes currently in drives (for tests/diagnostics).
    pub fn mounted_tapes(&self) -> Vec<usize> {
        let mut v: Vec<_> = self.mounted.iter().map(|(t, _)| *t).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TapeLibrary {
        TapeLibrary::new(TapeSpec {
            mount_time: SimDuration::from_secs(60),
            seek_bytes_per_sec: 100_000_000,
            stream_bytes_per_sec: 10_000_000,
            drives: 2,
            tape_capacity: 1000,
        })
    }

    #[test]
    fn archive_and_stage_roundtrip() {
        let mut t = lib();
        t.archive("a", Bytes::from(vec![1u8; 500])).unwrap();
        let (data, latency) = t.stage("a").unwrap();
        assert_eq!(data.len(), 500);
        // Already mounted from the archive write → no mount cost;
        // 500 B at 10 MB/s is tiny, offset 0 → latency well under a second.
        assert!(latency.as_secs_f64() < 1.0, "latency={latency}");
    }

    #[test]
    fn first_stage_pays_mount() {
        let mut t = lib();
        t.archive("a", Bytes::from(vec![1u8; 100])).unwrap();
        t.archive("b", Bytes::from(vec![1u8; 950])).unwrap(); // spills to tape 1
        t.archive("c", Bytes::from(vec![1u8; 950])).unwrap(); // tape 2
                                                              // Drives: 2. Tapes 1 and 2 are mounted now; tape 0 was dismounted.
        let (_, latency) = t.stage("a").unwrap();
        assert!(latency.as_secs_f64() >= 60.0, "expected mount cost, got {latency}");
        // Immediately staging again is cheap.
        let (_, l2) = t.stage("a").unwrap();
        assert!(l2.as_secs_f64() < 1.0);
    }

    #[test]
    fn tapes_spill_when_full() {
        let mut t = lib();
        t.archive("a", Bytes::from(vec![0u8; 600])).unwrap();
        t.archive("b", Bytes::from(vec![0u8; 600])).unwrap();
        assert!(t.contains("a") && t.contains("b"));
        // Second file cannot fit on tape 0 (1000 cap) → two tapes exist.
        assert_eq!(t.tape_fill.len(), 2);
    }

    #[test]
    fn seek_cost_grows_with_offset() {
        let mut t = TapeLibrary::new(TapeSpec {
            mount_time: SimDuration::ZERO,
            seek_bytes_per_sec: 1000, // 1 KB/s positioning: exaggerated
            stream_bytes_per_sec: 1_000_000_000,
            drives: 1,
            tape_capacity: 10_000,
        });
        t.archive("first", Bytes::from(vec![0u8; 1000])).unwrap();
        t.archive("second", Bytes::from(vec![0u8; 1000])).unwrap();
        let (_, l_first) = t.stage("first").unwrap();
        let (_, l_second) = t.stage("second").unwrap();
        assert!(
            l_second.as_secs_f64() > l_first.as_secs_f64() + 0.5,
            "deeper file must seek longer: {l_first} vs {l_second}"
        );
    }

    #[test]
    fn missing_file_errors() {
        let mut t = lib();
        assert!(matches!(t.stage("ghost"), Err(TapeError::NoSuchFile(_))));
        assert!(matches!(t.delete("ghost"), Err(TapeError::NoSuchFile(_))));
    }

    #[test]
    fn duplicate_archive_rejected() {
        let mut t = lib();
        t.archive("a", Bytes::from(vec![0u8; 10])).unwrap();
        assert!(matches!(
            t.archive("a", Bytes::from(vec![0u8; 10])),
            Err(TapeError::AlreadyArchived(_))
        ));
    }

    #[test]
    fn drive_lru_dismount() {
        let mut t = lib();
        t.archive("t0", Bytes::from(vec![0u8; 900])).unwrap(); // tape 0
        t.archive("t1", Bytes::from(vec![0u8; 900])).unwrap(); // tape 1
        t.archive("t2", Bytes::from(vec![0u8; 900])).unwrap(); // tape 2
                                                               // Two drives: most recently used tapes stay mounted.
        assert_eq!(t.mounted_tapes(), vec![1, 2]);
        t.stage("t0").unwrap(); // mounts tape 0, evicting LRU (tape 1)
        assert_eq!(t.mounted_tapes(), vec![0, 2]);
    }

    #[test]
    fn delete_then_stage_fails() {
        let mut t = lib();
        t.archive("a", Bytes::from(vec![0u8; 10])).unwrap();
        t.delete("a").unwrap();
        assert!(t.stage("a").is_err());
    }
}
