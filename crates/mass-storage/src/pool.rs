//! The site disk pool — "a data transfer cache for the Grid" (Section 4.4).
//!
//! Bounded disk space holding whole files, with pinning (a file being
//! served to a remote site must not vanish mid-transfer), space
//! reservation (`allocate_storage(datasize)` from the paper's QoS
//! discussion), and pluggable eviction.

use std::collections::HashMap;

use bytes::Bytes;

/// Eviction policy for unpinned files when space is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Least recently accessed first.
    Lru,
    /// Oldest insertion first, regardless of use.
    Fifo,
}

/// Why a pool operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Even after evicting everything unpinned the request cannot fit.
    InsufficientSpace {
        requested: u64,
        evictable: u64,
    },
    /// The file is larger than the whole pool.
    TooLarge {
        size: u64,
        capacity: u64,
    },
    NoSuchFile(String),
    AlreadyExists(String),
    /// Unpin without a matching pin.
    NotPinned(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::InsufficientSpace { requested, evictable } => {
                write!(f, "insufficient space: need {requested}, evictable {evictable}")
            }
            PoolError::TooLarge { size, capacity } => {
                write!(f, "file of {size} bytes exceeds pool capacity {capacity}")
            }
            PoolError::NoSuchFile(n) => write!(f, "no such file in pool: {n}"),
            PoolError::AlreadyExists(n) => write!(f, "file already in pool: {n}"),
            PoolError::NotPinned(n) => write!(f, "file not pinned: {n}"),
        }
    }
}

impl std::error::Error for PoolError {}

#[derive(Debug, Clone)]
struct Entry {
    data: Bytes,
    pins: u32,
    last_access: u64,
    inserted: u64,
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes_evicted: u64,
}

/// A bounded disk cache of named files.
#[derive(Debug, Clone)]
pub struct DiskPool {
    capacity: u64,
    used: u64,
    /// Space promised to in-flight reservations.
    reserved: u64,
    policy: EvictionPolicy,
    files: HashMap<String, Entry>,
    /// Logical access clock (no wall time).
    tick: u64,
    pub stats: PoolStats,
}

impl DiskPool {
    pub fn new(capacity: u64, policy: EvictionPolicy) -> Self {
        DiskPool {
            capacity,
            used: 0,
            reserved: 0,
            policy,
            files: HashMap::new(),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn free(&self) -> u64 {
        self.capacity - self.used - self.reserved
    }

    /// Space currently promised to in-flight reservations.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    pub fn contains(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    pub fn file_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// `allocate_storage(datasize)`: reserve space ahead of a transfer,
    /// evicting unpinned files if necessary. The reservation must be spent
    /// with [`DiskPool::put_reserved`] or released with
    /// [`DiskPool::release_reservation`].
    pub fn allocate(&mut self, size: u64) -> Result<Reservation, PoolError> {
        if size > self.capacity {
            return Err(PoolError::TooLarge { size, capacity: self.capacity });
        }
        self.make_room(size)?;
        self.reserved += size;
        Ok(Reservation { size })
    }

    /// Store a file under a prior reservation.
    pub fn put_reserved(
        &mut self,
        reservation: Reservation,
        name: &str,
        data: Bytes,
    ) -> Result<(), PoolError> {
        assert!(
            data.len() as u64 <= reservation.size,
            "file exceeds its reservation ({} > {})",
            data.len(),
            reservation.size
        );
        self.reserved -= reservation.size;
        self.put(name, data)
    }

    pub fn release_reservation(&mut self, reservation: Reservation) {
        self.reserved -= reservation.size;
    }

    /// Store a file, evicting unpinned files if needed.
    pub fn put(&mut self, name: &str, data: Bytes) -> Result<(), PoolError> {
        if self.files.contains_key(name) {
            return Err(PoolError::AlreadyExists(name.to_string()));
        }
        let size = data.len() as u64;
        if size > self.capacity {
            return Err(PoolError::TooLarge { size, capacity: self.capacity });
        }
        self.make_room(size)?;
        let t = self.bump();
        self.used += size;
        self.files.insert(name.to_string(), Entry { data, pins: 0, last_access: t, inserted: t });
        Ok(())
    }

    /// Read a file (cache hit bumps recency; a miss is counted).
    pub fn get(&mut self, name: &str) -> Option<Bytes> {
        let t = self.bump();
        match self.files.get_mut(name) {
            Some(e) => {
                e.last_access = t;
                self.stats.hits += 1;
                Some(e.data.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Read without recording a hit/miss (catalog-style inspection).
    pub fn peek(&self, name: &str) -> Option<Bytes> {
        self.files.get(name).map(|e| e.data.clone())
    }

    pub fn size_of(&self, name: &str) -> Option<u64> {
        self.files.get(name).map(|e| e.data.len() as u64)
    }

    /// Pin a file so eviction cannot touch it (nested pins allowed).
    pub fn pin(&mut self, name: &str) -> Result<(), PoolError> {
        self.files
            .get_mut(name)
            .map(|e| e.pins += 1)
            .ok_or_else(|| PoolError::NoSuchFile(name.to_string()))
    }

    pub fn unpin(&mut self, name: &str) -> Result<(), PoolError> {
        let e = self.files.get_mut(name).ok_or_else(|| PoolError::NoSuchFile(name.to_string()))?;
        if e.pins == 0 {
            return Err(PoolError::NotPinned(name.to_string()));
        }
        e.pins -= 1;
        Ok(())
    }

    pub fn is_pinned(&self, name: &str) -> bool {
        self.files.get(name).is_some_and(|e| e.pins > 0)
    }

    /// Names of all currently pinned files, sorted.
    pub fn pinned_files(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.files.iter().filter(|(_, e)| e.pins > 0).map(|(n, _)| n.clone()).collect();
        v.sort();
        v
    }

    /// Drop every pin. Pins are in-memory transfer state; a server crash
    /// loses them all at once, and recovery must not trip over pins held
    /// by a process that no longer exists.
    pub fn clear_pins(&mut self) {
        for e in self.files.values_mut() {
            e.pins = 0;
        }
    }

    /// Remove a file outright (pinned files cannot be removed).
    pub fn remove(&mut self, name: &str) -> Result<Bytes, PoolError> {
        match self.files.get(name) {
            None => Err(PoolError::NoSuchFile(name.to_string())),
            Some(e) if e.pins > 0 => Err(PoolError::NotPinned(format!("{name} is pinned"))),
            Some(_) => {
                let e = self.files.remove(name).expect("checked above");
                self.used -= e.data.len() as u64;
                Ok(e.data)
            }
        }
    }

    /// Evict unpinned files (per policy) until `size` more bytes fit.
    fn make_room(&mut self, size: u64) -> Result<(), PoolError> {
        while self.capacity - self.used - self.reserved < size {
            let victim = self
                .files
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(name, e)| {
                    let k = match self.policy {
                        EvictionPolicy::Lru => e.last_access,
                        EvictionPolicy::Fifo => e.inserted,
                    };
                    (k, (*name).clone()) // deterministic tie-break
                })
                .map(|(name, _)| name.clone());
            match victim {
                None => {
                    return Err(PoolError::InsufficientSpace {
                        requested: size,
                        evictable: self.capacity - self.used - self.reserved,
                    })
                }
                Some(name) => {
                    let e = self.files.remove(&name).expect("victim exists");
                    self.used -= e.data.len() as u64;
                    self.stats.evictions += 1;
                    self.stats.bytes_evicted += e.data.len() as u64;
                }
            }
        }
        Ok(())
    }
}

/// A space reservation obtained from [`DiskPool::allocate`].
#[derive(Debug)]
#[must_use = "reservations hold space until spent or released"]
pub struct Reservation {
    size: u64,
}

impl Reservation {
    pub fn size(&self) -> u64 {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn put_get_roundtrip() {
        let mut p = DiskPool::new(1000, EvictionPolicy::Lru);
        p.put("a", bytes(100)).unwrap();
        assert_eq!(p.get("a").unwrap().len(), 100);
        assert_eq!(p.used(), 100);
        assert!(p.get("b").is_none());
        assert_eq!(p.stats.hits, 1);
        assert_eq!(p.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut p = DiskPool::new(300, EvictionPolicy::Lru);
        p.put("a", bytes(100)).unwrap();
        p.put("b", bytes(100)).unwrap();
        p.put("c", bytes(100)).unwrap();
        p.get("a"); // warm a
        p.put("d", bytes(100)).unwrap(); // must evict b (coldest)
        assert!(p.contains("a"));
        assert!(!p.contains("b"));
        assert!(p.contains("c") && p.contains("d"));
        assert_eq!(p.stats.evictions, 1);
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut p = DiskPool::new(300, EvictionPolicy::Fifo);
        p.put("a", bytes(100)).unwrap();
        p.put("b", bytes(100)).unwrap();
        p.put("c", bytes(100)).unwrap();
        p.get("a"); // recency is irrelevant for FIFO
        p.put("d", bytes(100)).unwrap();
        assert!(!p.contains("a"));
    }

    #[test]
    fn pinned_files_survive_eviction() {
        let mut p = DiskPool::new(300, EvictionPolicy::Lru);
        p.put("a", bytes(100)).unwrap();
        p.pin("a").unwrap();
        p.put("b", bytes(100)).unwrap();
        p.put("c", bytes(100)).unwrap();
        p.put("d", bytes(100)).unwrap(); // evicts b or c, never a
        assert!(p.contains("a"));
        // Everything else unpinned is evictable; pool is full again.
        let err = p.put("huge", bytes(250)).unwrap_err();
        assert!(matches!(err, PoolError::InsufficientSpace { .. }) || p.contains("a"));
    }

    #[test]
    fn pin_unpin_nesting() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        p.put("a", bytes(10)).unwrap();
        p.pin("a").unwrap();
        p.pin("a").unwrap();
        p.unpin("a").unwrap();
        assert!(p.is_pinned("a"));
        p.unpin("a").unwrap();
        assert!(!p.is_pinned("a"));
        assert!(matches!(p.unpin("a"), Err(PoolError::NotPinned(_))));
    }

    #[test]
    fn pinned_remove_refused() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        p.put("a", bytes(10)).unwrap();
        p.pin("a").unwrap();
        assert!(p.remove("a").is_err());
        p.unpin("a").unwrap();
        assert_eq!(p.remove("a").unwrap().len(), 10);
        assert_eq!(p.used(), 0);
    }

    #[test]
    fn reservation_holds_space() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        let r = p.allocate(80).unwrap();
        assert_eq!(p.free(), 20);
        // Another large allocation cannot fit while the reservation lives.
        assert!(p.allocate(50).is_err());
        p.put_reserved(r, "a", bytes(80)).unwrap();
        assert_eq!(p.used(), 80);
        assert_eq!(p.free(), 20);
    }

    #[test]
    fn reservation_release_returns_space() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        let r = p.allocate(80).unwrap();
        p.release_reservation(r);
        assert_eq!(p.free(), 100);
    }

    #[test]
    fn allocation_evicts_for_room() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        p.put("a", bytes(60)).unwrap();
        let r = p.allocate(80).unwrap();
        assert!(!p.contains("a"), "allocation should have evicted");
        p.put_reserved(r, "b", bytes(80)).unwrap();
    }

    #[test]
    fn too_large_rejected_without_eviction() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        p.put("a", bytes(50)).unwrap();
        assert!(matches!(p.put("x", bytes(200)), Err(PoolError::TooLarge { .. })));
        assert!(p.contains("a"), "failed oversize put must not evict");
    }

    #[test]
    fn duplicate_put_rejected() {
        let mut p = DiskPool::new(100, EvictionPolicy::Lru);
        p.put("a", bytes(10)).unwrap();
        assert!(matches!(p.put("a", bytes(10)), Err(PoolError::AlreadyExists(_))));
    }

    #[test]
    fn eviction_is_deterministic_on_ties() {
        let run = || {
            let mut p = DiskPool::new(300, EvictionPolicy::Fifo);
            // Same tick is impossible (tick increments), but same policy key
            // order must still be deterministic across HashMap iteration.
            p.put("x", bytes(100)).unwrap();
            p.put("y", bytes(100)).unwrap();
            p.put("z", bytes(100)).unwrap();
            p.put("w", bytes(150)).unwrap();
            p.file_names()
        };
        assert_eq!(run(), run());
    }
}
