//! Pluggable archive backends: the MosaicFS-style split between the
//! staging/replica-tracking core and thin per-technology adapters.
//!
//! GDMP (Section 4.4) layers replication above interchangeable Mass
//! Storage Systems — HPSS at SLAC, Castor at CERN, Enstore at FNAL. This
//! module is that seam in code: [`HierarchicalStorage`] keeps the disk
//! pool, the staging rules, and the failover logic, and talks to the
//! archive tier only through [`StorageBackend`]. Three adapters ship:
//!
//! * [`TapeBackend`] — the classic robot library ([`crate::tape`]),
//!   mount + seek + stream latencies, byte-identical to the pre-trait
//!   `HierarchicalStorage` behaviour;
//! * [`DiskArrayBackend`] — a bounded nearline disk array: fixed per-op
//!   latency plus a streaming rate, refuses writes past its capacity;
//! * [`ObjectStoreBackend`] — an unbounded remote object store: every
//!   request pays a round trip plus streaming, and operations carry
//!   per-request and per-byte cost units.
//!
//! ## The latency/cost contract
//!
//! Every mutating operation returns an [`OpReceipt`]. Adapters must keep
//! both fields **pure functions of the operation sequence**: no wall
//! clocks, no ambient randomness, so same ops ⇒ same receipts, byte for
//! byte (the conformance suite asserts this for every adapter). Latency
//! is sim-time the caller charges to its clock; `cost` is an abstract
//! integer tally (mounts, requests, shipped megabytes) that policy layers
//! can budget against without floating-point drift.
//!
//! [`HierarchicalStorage`]: crate::hrm::HierarchicalStorage

use std::collections::HashMap;

use bytes::Bytes;
use gdmp_simnet::time::SimDuration;

use crate::tape::{TapeError, TapeLibrary, TapeSpec};

/// Abstract, deterministic cost units (see the module docs).
pub type CostUnits = u64;

const MIB: u64 = 1024 * 1024;

/// Whole mebibytes touched by an operation, rounded up (1 minimum for a
/// non-empty payload), so per-byte pricing stays integral.
fn mib_ceil(bytes: u64) -> u64 {
    bytes.div_ceil(MIB)
}

/// What one mutating backend operation charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpReceipt {
    /// Sim-time the operation took; the caller charges its clock.
    pub latency: SimDuration,
    /// Abstract cost units (see the module docs).
    pub cost: CostUnits,
}

/// Adapter-side errors, uniform across backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    NoSuchFile(String),
    AlreadyStored(String),
    /// A bounded backend was asked to absorb more than its free space.
    Full {
        name: String,
        size: u64,
        free: u64,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::NoSuchFile(n) => write!(f, "not in the archive: {n}"),
            BackendError::AlreadyStored(n) => write!(f, "already archived: {n}"),
            BackendError::Full { name, size, free } => {
                write!(f, "archive full: {name} needs {size} B, {free} B free")
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<TapeError> for BackendError {
    fn from(e: TapeError) -> Self {
        match e {
            TapeError::NoSuchFile(n) => BackendError::NoSuchFile(n),
            TapeError::AlreadyArchived(n) => BackendError::AlreadyStored(n),
        }
    }
}

/// Uniform operation counters every adapter maintains. `mounts` is zero
/// for backends without removable media.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    pub stores: u64,
    pub fetches: u64,
    pub evictions: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub mounts: u64,
    /// Total cost units charged across all operations.
    pub cost_units: CostUnits,
}

/// The archive tier behind a site's disk pool. See the module docs for
/// the latency/cost contract adapters must uphold.
pub trait StorageBackend: std::fmt::Debug {
    /// Short adapter name (`"tape"`, `"disk_array"`, `"object_store"`).
    fn kind(&self) -> &'static str;

    /// Write a file into the archive.
    fn store(&mut self, name: &str, data: Bytes) -> Result<OpReceipt, BackendError>;

    /// Read a file back (a stage request from the core's point of view).
    fn fetch(&mut self, name: &str) -> Result<(Bytes, OpReceipt), BackendError>;

    /// Drop a file from the archive.
    fn evict(&mut self, name: &str) -> Result<(), BackendError>;

    fn contains(&self, name: &str) -> bool;

    /// Auditor's view of a file's contents: no latency, no cost, no stats
    /// — invariant checks must not perturb the simulation.
    fn peek(&self, name: &str) -> Option<Bytes>;

    /// Archived names, sorted (deterministic iteration for observers).
    fn file_names(&self) -> Vec<String>;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes the backend can still absorb; `None` means unbounded.
    fn free_bytes(&self) -> Option<u64>;

    fn stats(&self) -> BackendStats;
}

/// Declarative pick of an archive adapter — what a scenario file's
/// per-site `storage` stanza compiles into and [`SiteConfig`] carries.
///
/// [`SiteConfig`]: https://docs.rs/gdmp (the `gdmp` crate's site config)
#[derive(Debug, Clone)]
pub enum StorageConfig {
    /// Robot tape library ([`TapeSpec`]); the default everywhere.
    Tape(TapeSpec),
    /// Bounded nearline disk array.
    DiskArray(DiskArraySpec),
    /// Unbounded remote object store.
    ObjectStore(ObjectStoreSpec),
}

impl StorageConfig {
    /// The historical default: a classic tape library.
    pub fn classic_tape() -> Self {
        StorageConfig::Tape(TapeSpec::classic())
    }

    /// Short adapter name this config builds (`"tape"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            StorageConfig::Tape(_) => "tape",
            StorageConfig::DiskArray(_) => "disk_array",
            StorageConfig::ObjectStore(_) => "object_store",
        }
    }

    /// Instantiate the adapter.
    pub fn build(&self) -> Box<dyn StorageBackend> {
        match self {
            StorageConfig::Tape(spec) => Box::new(TapeBackend::new(*spec)),
            StorageConfig::DiskArray(spec) => Box::new(DiskArrayBackend::new(*spec)),
            StorageConfig::ObjectStore(spec) => Box::new(ObjectStoreBackend::new(*spec)),
        }
    }
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig::classic_tape()
    }
}

// ---- tape ----------------------------------------------------------------

/// The tape library as a [`StorageBackend`]. Latencies are exactly
/// [`TapeLibrary`]'s (mount + seek + stream); cost charges 100 units per
/// mount actually paid plus 1 per MiB streamed.
#[derive(Debug, Clone)]
pub struct TapeBackend {
    lib: TapeLibrary,
    stats: BackendStats,
}

impl TapeBackend {
    pub fn new(spec: TapeSpec) -> Self {
        TapeBackend { lib: TapeLibrary::new(spec), stats: BackendStats::default() }
    }

    /// The underlying library, for drive-level diagnostics
    /// (mounted tapes, fill levels).
    pub fn library(&self) -> &TapeLibrary {
        &self.lib
    }

    fn charge(&mut self, mounts_before: u64, bytes: u64) -> CostUnits {
        let cost = (self.lib.stats.mounts - mounts_before) * 100 + mib_ceil(bytes);
        self.stats.cost_units += cost;
        self.stats.mounts = self.lib.stats.mounts;
        cost
    }
}

impl StorageBackend for TapeBackend {
    fn kind(&self) -> &'static str {
        "tape"
    }

    fn store(&mut self, name: &str, data: Bytes) -> Result<OpReceipt, BackendError> {
        let size = data.len() as u64;
        let mounts_before = self.lib.stats.mounts;
        let latency = self.lib.archive(name, data)?;
        self.stats.stores += 1;
        self.stats.bytes_written += size;
        let cost = self.charge(mounts_before, size);
        Ok(OpReceipt { latency, cost })
    }

    fn fetch(&mut self, name: &str) -> Result<(Bytes, OpReceipt), BackendError> {
        let mounts_before = self.lib.stats.mounts;
        let (data, latency) = self.lib.stage(name)?;
        self.stats.fetches += 1;
        self.stats.bytes_read += data.len() as u64;
        let cost = self.charge(mounts_before, data.len() as u64);
        Ok((data, OpReceipt { latency, cost }))
    }

    fn evict(&mut self, name: &str) -> Result<(), BackendError> {
        self.lib.delete(name)?;
        self.stats.evictions += 1;
        Ok(())
    }

    fn contains(&self, name: &str) -> bool {
        self.lib.contains(name)
    }

    fn peek(&self, name: &str) -> Option<Bytes> {
        self.lib.peek(name)
    }

    fn file_names(&self) -> Vec<String> {
        self.lib.file_names()
    }

    fn len(&self) -> usize {
        self.lib.len()
    }

    fn free_bytes(&self) -> Option<u64> {
        None // the robot opens a fresh tape whenever the last one fills
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

// ---- nearline disk array -------------------------------------------------

/// Physical shape of a nearline disk array.
#[derive(Debug, Clone, Copy)]
pub struct DiskArraySpec {
    /// Total capacity in bytes; stores past it return [`BackendError::Full`].
    pub capacity: u64,
    /// Fixed per-operation latency (controller + head positioning).
    pub op_latency: SimDuration,
    /// Streaming read/write rate, bytes per second.
    pub stream_bytes_per_sec: u64,
}

impl DiskArraySpec {
    /// A commodity RAID shelf: 200 GiB, 5 ms per op, 80 MB/s streaming.
    pub fn commodity() -> Self {
        DiskArraySpec {
            capacity: 200 * 1024 * MIB,
            op_latency: SimDuration::from_millis(5),
            stream_bytes_per_sec: 80_000_000,
        }
    }
}

/// Bounded disk-array adapter: every op pays the fixed latency plus the
/// streaming time; cost is 1 unit per operation (spindles are cheap, the
/// op slots are the scarce resource).
#[derive(Debug, Clone)]
pub struct DiskArrayBackend {
    spec: DiskArraySpec,
    files: HashMap<String, Bytes>,
    used: u64,
    stats: BackendStats,
}

impl DiskArrayBackend {
    pub fn new(spec: DiskArraySpec) -> Self {
        DiskArrayBackend { spec, files: HashMap::new(), used: 0, stats: BackendStats::default() }
    }

    fn op_receipt(&mut self, bytes: u64) -> OpReceipt {
        let latency = self.spec.op_latency
            + SimDuration::serialization(bytes, self.spec.stream_bytes_per_sec * 8);
        self.stats.cost_units += 1;
        OpReceipt { latency, cost: 1 }
    }
}

impl StorageBackend for DiskArrayBackend {
    fn kind(&self) -> &'static str {
        "disk_array"
    }

    fn store(&mut self, name: &str, data: Bytes) -> Result<OpReceipt, BackendError> {
        if self.files.contains_key(name) {
            return Err(BackendError::AlreadyStored(name.to_string()));
        }
        let size = data.len() as u64;
        let free = self.spec.capacity - self.used;
        if size > free {
            return Err(BackendError::Full { name: name.to_string(), size, free });
        }
        self.files.insert(name.to_string(), data);
        self.used += size;
        self.stats.stores += 1;
        self.stats.bytes_written += size;
        Ok(self.op_receipt(size))
    }

    fn fetch(&mut self, name: &str) -> Result<(Bytes, OpReceipt), BackendError> {
        let data = self
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| BackendError::NoSuchFile(name.to_string()))?;
        let size = data.len() as u64;
        self.stats.fetches += 1;
        self.stats.bytes_read += size;
        let receipt = self.op_receipt(size);
        Ok((data, receipt))
    }

    fn evict(&mut self, name: &str) -> Result<(), BackendError> {
        let data =
            self.files.remove(name).ok_or_else(|| BackendError::NoSuchFile(name.to_string()))?;
        self.used -= data.len() as u64;
        self.stats.evictions += 1;
        Ok(())
    }

    fn contains(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    fn peek(&self, name: &str) -> Option<Bytes> {
        self.files.get(name).cloned()
    }

    fn file_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    fn len(&self) -> usize {
        self.files.len()
    }

    fn free_bytes(&self) -> Option<u64> {
        Some(self.spec.capacity - self.used)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

// ---- remote object store -------------------------------------------------

/// Shape of an object-store-like remote archive.
#[derive(Debug, Clone, Copy)]
pub struct ObjectStoreSpec {
    /// Round trip paid by every request before any byte moves.
    pub rtt: SimDuration,
    /// Streaming transfer rate, bytes per second.
    pub stream_bytes_per_sec: u64,
    /// Cost units per request (PUT/GET/DELETE alike).
    pub cost_per_request: CostUnits,
    /// Cost units per MiB moved (rounded up per operation).
    pub cost_per_mib: CostUnits,
}

impl ObjectStoreSpec {
    /// A WAN-remote store: 80 ms RTT, 50 MB/s, 10 units/request + 2/MiB.
    pub fn remote() -> Self {
        ObjectStoreSpec {
            rtt: SimDuration::from_millis(80),
            stream_bytes_per_sec: 50_000_000,
            cost_per_request: 10,
            cost_per_mib: 2,
        }
    }
}

/// Unbounded remote-object-store adapter: every request pays the RTT plus
/// streaming; cost is per-request plus per-MiB (the cloud-bill model).
#[derive(Debug, Clone)]
pub struct ObjectStoreBackend {
    spec: ObjectStoreSpec,
    objects: HashMap<String, Bytes>,
    stats: BackendStats,
}

impl ObjectStoreBackend {
    pub fn new(spec: ObjectStoreSpec) -> Self {
        ObjectStoreBackend { spec, objects: HashMap::new(), stats: BackendStats::default() }
    }

    fn request_receipt(&mut self, bytes: u64) -> OpReceipt {
        let latency =
            self.spec.rtt + SimDuration::serialization(bytes, self.spec.stream_bytes_per_sec * 8);
        let cost = self.spec.cost_per_request + self.spec.cost_per_mib * mib_ceil(bytes);
        self.stats.cost_units += cost;
        OpReceipt { latency, cost }
    }
}

impl StorageBackend for ObjectStoreBackend {
    fn kind(&self) -> &'static str {
        "object_store"
    }

    fn store(&mut self, name: &str, data: Bytes) -> Result<OpReceipt, BackendError> {
        if self.objects.contains_key(name) {
            return Err(BackendError::AlreadyStored(name.to_string()));
        }
        let size = data.len() as u64;
        self.objects.insert(name.to_string(), data);
        self.stats.stores += 1;
        self.stats.bytes_written += size;
        Ok(self.request_receipt(size))
    }

    fn fetch(&mut self, name: &str) -> Result<(Bytes, OpReceipt), BackendError> {
        let data = self
            .objects
            .get(name)
            .cloned()
            .ok_or_else(|| BackendError::NoSuchFile(name.to_string()))?;
        let size = data.len() as u64;
        self.stats.fetches += 1;
        self.stats.bytes_read += size;
        let receipt = self.request_receipt(size);
        Ok((data, receipt))
    }

    fn evict(&mut self, name: &str) -> Result<(), BackendError> {
        self.objects.remove(name).ok_or_else(|| BackendError::NoSuchFile(name.to_string()))?;
        self.stats.evictions += 1;
        Ok(())
    }

    fn contains(&self, name: &str) -> bool {
        self.objects.contains_key(name)
    }

    fn peek(&self, name: &str) -> Option<Bytes> {
        self.objects.get(name).cloned()
    }

    fn file_names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.objects.keys().cloned().collect();
        v.sort();
        v
    }

    fn len(&self) -> usize {
        self.objects.len()
    }

    fn free_bytes(&self) -> Option<u64> {
        None
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_backend_matches_raw_library_latencies() {
        let spec = TapeSpec::classic();
        let mut lib = TapeLibrary::new(spec);
        let mut backend = TapeBackend::new(spec);
        let data = Bytes::from(vec![3u8; 4 * 1024 * 1024]);
        let raw = lib.archive("a", data.clone()).unwrap();
        let receipt = backend.store("a", data).unwrap();
        assert_eq!(receipt.latency, raw, "adapter must not change tape latencies");
        let (_, raw_stage) = lib.stage("a").unwrap();
        let (_, stage_receipt) = backend.fetch("a").unwrap();
        assert_eq!(stage_receipt.latency, raw_stage);
    }

    #[test]
    fn disk_array_enforces_capacity() {
        let mut b = DiskArrayBackend::new(DiskArraySpec {
            capacity: 1000,
            op_latency: SimDuration::from_millis(5),
            stream_bytes_per_sec: 1_000_000,
        });
        b.store("a", Bytes::from(vec![0u8; 600])).unwrap();
        match b.store("b", Bytes::from(vec![0u8; 600])) {
            Err(BackendError::Full { free, .. }) => assert_eq!(free, 400),
            other => panic!("expected Full, got {other:?}"),
        }
        b.evict("a").unwrap();
        assert_eq!(b.free_bytes(), Some(1000));
        b.store("b", Bytes::from(vec![0u8; 600])).unwrap();
    }

    #[test]
    fn object_store_cost_is_request_plus_bytes() {
        let spec = ObjectStoreSpec::remote();
        let mut b = ObjectStoreBackend::new(spec);
        let r = b.store("x", Bytes::from(vec![0u8; 3 * 1024 * 1024])).unwrap();
        assert_eq!(r.cost, spec.cost_per_request + 3 * spec.cost_per_mib);
        assert!(r.latency >= spec.rtt);
    }

    #[test]
    fn storage_config_builds_the_right_adapter() {
        assert_eq!(StorageConfig::classic_tape().build().kind(), "tape");
        assert_eq!(
            StorageConfig::DiskArray(DiskArraySpec::commodity()).build().kind(),
            "disk_array"
        );
        assert_eq!(
            StorageConfig::ObjectStore(ObjectStoreSpec::remote()).build().kind(),
            "object_store"
        );
    }
}
