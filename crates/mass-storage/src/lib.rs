//! # gdmp-mass-storage — simulated site storage (Section 4.4)
//!
//! Each GDMP site owns a **disk pool** ("a data transfer cache for the
//! Grid") in front of a **Mass Storage System** (an HPSS-style tape
//! library). GDMP triggers explicit file-stage requests between the two
//! through an HRM-style API, pays mount/seek/stream latencies for tape
//! access, and reserves disk space before transfers
//! (`allocate_storage(datasize)`).
//!
//! All latencies are [`gdmp_simnet::time::SimDuration`] values returned to
//! the caller; this crate never sleeps or reads a real clock.

pub mod backend;
pub mod hrm;
pub mod pool;
pub mod stager;
pub mod tape;

pub use backend::{
    BackendError, BackendStats, CostUnits, DiskArrayBackend, DiskArraySpec, ObjectStoreBackend,
    ObjectStoreSpec, OpReceipt, StorageBackend, StorageConfig, TapeBackend,
};
pub use hrm::{HierarchicalStorage, HrmError, Residence, StageOutcome};
pub use pool::{DiskPool, EvictionPolicy, PoolError, Reservation};
pub use stager::{StageCompletion, StageRequest, StagingQueue};
pub use tape::{TapeError, TapeLibrary, TapeSpec};
