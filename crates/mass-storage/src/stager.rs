//! The staging queue: concurrent stage requests contending for tape drives.
//!
//! Section 4.4: "A file staging facility is necessary if disk space is
//! limited and many users request files concurrently." A real MSS serves
//! stage requests from a queue bounded by its drive count; later requests
//! wait. [`StagingQueue`] computes per-request completion times for a batch
//! of requests under that contention — the latency a GDMP server quotes
//! before starting the disk-to-disk transfer.

use gdmp_simnet::time::{SimDuration, SimTime};

use crate::tape::{TapeError, TapeLibrary};

/// One stage request in a batch.
#[derive(Debug, Clone)]
pub struct StageRequest {
    pub file: String,
    /// When the request arrives at the MSS.
    pub arrival: SimTime,
}

/// The outcome of one request after queueing.
#[derive(Debug, Clone)]
pub struct StageCompletion {
    pub file: String,
    pub arrival: SimTime,
    /// When a drive picked the request up.
    pub started: SimTime,
    /// When the file was fully on disk.
    pub completed: SimTime,
    /// Pure service time (mount + seek + stream) excluding queueing.
    pub service: SimDuration,
}

impl StageCompletion {
    /// Time spent waiting for a drive.
    pub fn queue_delay(&self) -> SimDuration {
        self.started.since(self.arrival)
    }

    /// Total request latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.since(self.arrival)
    }
}

/// A FIFO staging queue over the library's drives.
///
/// Service model: each drive serves one request at a time; a request's
/// service time is whatever the library charges for the stage (mount if
/// its tape is cold, seek, stream). Requests are dispatched FIFO to the
/// earliest-free drive.
pub struct StagingQueue<'a> {
    library: &'a mut TapeLibrary,
    drives: usize,
}

impl<'a> StagingQueue<'a> {
    pub fn new(library: &'a mut TapeLibrary, drives: usize) -> Self {
        assert!(drives > 0, "need at least one drive");
        StagingQueue { library, drives }
    }

    /// Serve a batch of requests FIFO (by arrival time, ties by file name).
    /// Returns completions in service order.
    pub fn serve(
        &mut self,
        mut requests: Vec<StageRequest>,
    ) -> Result<Vec<StageCompletion>, TapeError> {
        requests.sort_by(|a, b| a.arrival.cmp(&b.arrival).then_with(|| a.file.cmp(&b.file)));
        // Earliest-free time per drive.
        let mut free_at = vec![SimTime::ZERO; self.drives];
        let mut out = Vec::with_capacity(requests.len());
        for req in requests {
            // Earliest-free drive (deterministic: lowest index wins ties).
            let (drive, &at) = free_at
                .iter()
                .enumerate()
                .min_by_key(|(i, t)| (**t, *i))
                .expect("at least one drive");
            let started = at.max(req.arrival);
            let (_, service) = self.library.stage(&req.file)?;
            let completed = started + service;
            free_at[drive] = completed;
            out.push(StageCompletion {
                file: req.file,
                arrival: req.arrival,
                started,
                completed,
                service,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::TapeSpec;
    use bytes::Bytes;

    fn library_with(files: usize, size: usize, drives: usize) -> TapeLibrary {
        let mut lib = TapeLibrary::new(TapeSpec {
            mount_time: SimDuration::from_secs(10),
            seek_bytes_per_sec: 1_000_000_000,
            stream_bytes_per_sec: 10_000_000,
            drives,
            tape_capacity: 1 << 40,
        });
        for i in 0..files {
            lib.archive(&format!("f{i}"), Bytes::from(vec![0u8; size])).unwrap();
        }
        lib
    }

    fn burst(n: usize) -> Vec<StageRequest> {
        (0..n).map(|i| StageRequest { file: format!("f{i}"), arrival: SimTime::ZERO }).collect()
    }

    #[test]
    fn single_drive_serializes_requests() {
        let mut lib = library_with(4, 10_000_000, 1);
        let mut q = StagingQueue::new(&mut lib, 1);
        let done = q.serve(burst(4)).unwrap();
        assert_eq!(done.len(), 4);
        // Each file streams 1 s (10 MB at 10 MB/s); queue delays grow.
        for w in done.windows(2) {
            assert!(w[1].started >= w[0].completed, "overlap on a single drive");
        }
        assert_eq!(done[0].queue_delay(), SimDuration::ZERO);
        assert!(done[3].queue_delay() > done[1].queue_delay());
    }

    #[test]
    fn more_drives_cut_queueing() {
        let slow = {
            let mut lib = library_with(6, 10_000_000, 1);
            let mut q = StagingQueue::new(&mut lib, 1);
            let done = q.serve(burst(6)).unwrap();
            done.iter().map(|c| c.latency().nanos()).max().unwrap()
        };
        let fast = {
            let mut lib = library_with(6, 10_000_000, 3);
            let mut q = StagingQueue::new(&mut lib, 3);
            let done = q.serve(burst(6)).unwrap();
            done.iter().map(|c| c.latency().nanos()).max().unwrap()
        };
        assert!(
            fast * 2 < slow,
            "3 drives ({fast} ns) should at least halve the 1-drive makespan ({slow} ns)"
        );
    }

    #[test]
    fn late_arrivals_wait_for_their_arrival() {
        let mut lib = library_with(2, 1_000_000, 2);
        let mut q = StagingQueue::new(&mut lib, 2);
        let reqs = vec![
            StageRequest { file: "f0".into(), arrival: SimTime::ZERO },
            StageRequest {
                file: "f1".into(),
                arrival: SimTime::ZERO + SimDuration::from_secs(100),
            },
        ];
        let done = q.serve(reqs).unwrap();
        assert_eq!(done[1].started.as_secs_f64(), 100.0, "no time travel");
        assert_eq!(done[1].queue_delay(), SimDuration::ZERO);
    }

    #[test]
    fn unknown_file_aborts_batch() {
        let mut lib = library_with(1, 1000, 1);
        let mut q = StagingQueue::new(&mut lib, 1);
        let reqs = vec![StageRequest { file: "ghost".into(), arrival: SimTime::ZERO }];
        assert!(q.serve(reqs).is_err());
    }

    #[test]
    fn fifo_order_is_deterministic_on_ties() {
        let run = || {
            let mut lib = library_with(4, 1000, 2);
            let mut q = StagingQueue::new(&mut lib, 2);
            q.serve(burst(4)).unwrap().into_iter().map(|c| c.file).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
