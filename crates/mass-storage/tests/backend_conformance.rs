//! Shared conformance suite for every [`StorageBackend`] adapter.
//!
//! Each test runs against all three shipped adapters (tape, disk array,
//! object store) through the same driver, so a new adapter only has to be
//! added to [`adapters()`] to inherit the whole contract:
//!
//! * store/fetch round-trips preserve bytes;
//! * receipts (latency + cost) are pure functions of the op sequence;
//! * errors are uniform (`NoSuchFile`, `AlreadyStored`, `Full`);
//! * stats and capacity accounting balance;
//! * `peek`/`file_names` are side-effect-free observers.

use bytes::Bytes;
use gdmp_mass_storage::backend::{BackendError, DiskArraySpec, ObjectStoreSpec, StorageConfig};
use gdmp_mass_storage::tape::TapeSpec;
use gdmp_simnet::time::SimDuration;

/// Every shipped adapter, built from its scenario-facing config. The
/// disk array is kept small so the `Full` path is reachable.
fn adapters() -> Vec<StorageConfig> {
    vec![
        StorageConfig::Tape(TapeSpec::classic()),
        StorageConfig::DiskArray(DiskArraySpec {
            capacity: 64 * 1024 * 1024,
            op_latency: SimDuration::from_millis(5),
            stream_bytes_per_sec: 80_000_000,
        }),
        StorageConfig::ObjectStore(ObjectStoreSpec::remote()),
    ]
}

fn payload(tag: u8, len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8).wrapping_add(tag)).collect::<Vec<_>>())
}

#[test]
fn store_fetch_roundtrip_preserves_bytes() {
    for config in adapters() {
        let kind = config.kind();
        let mut b = config.build();
        let data = payload(7, 1 << 20);
        b.store("f1", data.clone()).unwrap();
        assert!(b.contains("f1"), "{kind}");
        let (back, receipt) = b.fetch("f1").unwrap();
        assert_eq!(back, data, "{kind}: fetch must return stored bytes");
        assert!(receipt.latency > SimDuration::ZERO, "{kind}: archive access is never free");
        assert!(receipt.cost > 0, "{kind}: archive access always charges cost units");
    }
}

#[test]
fn receipts_are_deterministic_across_twin_instances() {
    // Same op sequence on two fresh instances ⇒ identical receipts and
    // stats, byte for byte. This is the latency/cost purity contract.
    for config in adapters() {
        let kind = config.kind();
        let mut a = config.build();
        let mut b = config.build();
        let mut receipts_a = Vec::new();
        let mut receipts_b = Vec::new();
        for (backend, out) in [(&mut a, &mut receipts_a), (&mut b, &mut receipts_b)] {
            for i in 0..6u8 {
                let name = format!("f{i}");
                out.push(backend.store(&name, payload(i, 300_000 + i as usize * 70_000)).unwrap());
            }
            for i in [3u8, 0, 5, 3] {
                let (_, r) = backend.fetch(&format!("f{i}")).unwrap();
                out.push(r);
            }
            backend.evict("f1").unwrap();
        }
        assert_eq!(receipts_a, receipts_b, "{kind}: receipts must be deterministic");
        assert_eq!(a.stats(), b.stats(), "{kind}: stats must be deterministic");
        assert_eq!(a.file_names(), b.file_names(), "{kind}");
    }
}

#[test]
fn errors_are_uniform_across_adapters() {
    for config in adapters() {
        let kind = config.kind();
        let mut b = config.build();
        assert!(
            matches!(b.fetch("ghost"), Err(BackendError::NoSuchFile(_))),
            "{kind}: fetch of an unknown file"
        );
        assert!(
            matches!(b.evict("ghost"), Err(BackendError::NoSuchFile(_))),
            "{kind}: evict of an unknown file"
        );
        b.store("dup", payload(1, 64)).unwrap();
        assert!(
            matches!(b.store("dup", payload(2, 64)), Err(BackendError::AlreadyStored(_))),
            "{kind}: double store is rejected"
        );
        // A failed store must not corrupt the original.
        assert_eq!(b.peek("dup").unwrap(), payload(1, 64), "{kind}");
    }
}

#[test]
fn stats_account_for_every_operation() {
    for config in adapters() {
        let kind = config.kind();
        let mut b = config.build();
        let sizes = [100_000u64, 250_000, 75_000];
        for (i, size) in sizes.iter().enumerate() {
            b.store(&format!("f{i}"), payload(i as u8, *size as usize)).unwrap();
        }
        b.fetch("f0").unwrap();
        b.fetch("f2").unwrap();
        b.evict("f1").unwrap();
        let s = b.stats();
        assert_eq!(s.stores, 3, "{kind}");
        assert_eq!(s.fetches, 2, "{kind}");
        assert_eq!(s.evictions, 1, "{kind}");
        assert_eq!(s.bytes_written, sizes.iter().sum::<u64>(), "{kind}");
        assert_eq!(s.bytes_read, sizes[0] + sizes[2], "{kind}");
        assert!(s.cost_units > 0, "{kind}");
        assert_eq!(b.len(), 2, "{kind}");
        assert_eq!(b.file_names(), vec!["f0".to_string(), "f2".to_string()], "{kind}: sorted");
    }
}

#[test]
fn peek_and_file_names_never_perturb_state() {
    for config in adapters() {
        let kind = config.kind();
        let mut b = config.build();
        b.store("f", payload(9, 4096)).unwrap();
        let stats_before = b.stats();
        let free_before = b.free_bytes();
        assert_eq!(b.peek("f").unwrap(), payload(9, 4096), "{kind}");
        assert!(b.peek("nope").is_none(), "{kind}");
        let _ = b.file_names();
        let _ = b.contains("f");
        assert_eq!(b.stats(), stats_before, "{kind}: observers must not touch stats");
        assert_eq!(b.free_bytes(), free_before, "{kind}: observers must not touch capacity");
    }
}

#[test]
fn capacity_accounting_balances_through_store_evict_cycles() {
    for config in adapters() {
        let kind = config.kind();
        let mut b = config.build();
        let initial_free = b.free_bytes();
        b.store("a", payload(1, 10_000)).unwrap();
        b.store("b", payload(2, 20_000)).unwrap();
        if let Some(free) = b.free_bytes() {
            assert_eq!(free, initial_free.unwrap() - 30_000, "{kind}");
        }
        b.evict("a").unwrap();
        b.evict("b").unwrap();
        assert_eq!(b.free_bytes(), initial_free, "{kind}: evict returns all space");
        assert!(b.is_empty(), "{kind}");
    }
}

#[test]
fn bounded_backend_reports_full_with_exact_free_space() {
    let mut b = StorageConfig::DiskArray(DiskArraySpec {
        capacity: 50_000,
        op_latency: SimDuration::from_millis(1),
        stream_bytes_per_sec: 1_000_000,
    })
    .build();
    b.store("a", payload(0, 30_000)).unwrap();
    match b.store("big", payload(0, 30_000)) {
        Err(BackendError::Full { name, size, free }) => {
            assert_eq!(name, "big");
            assert_eq!(size, 30_000);
            assert_eq!(free, 20_000);
        }
        other => panic!("expected Full, got {other:?}"),
    }
    // Rejected store must not consume space or bump store stats.
    assert_eq!(b.free_bytes(), Some(20_000));
    assert_eq!(b.stats().stores, 1);
}

#[test]
fn larger_payloads_never_cost_less() {
    // Latency and cost must be monotone in payload size on a fresh
    // instance (no adapter may discount bigger transfers).
    for config in adapters() {
        let kind = config.kind();
        let mut small = config.build();
        let mut large = config.build();
        let r_small = small.store("f", payload(0, 1 << 20)).unwrap();
        let r_large = large.store("f", payload(0, 8 << 20)).unwrap();
        assert!(r_large.latency >= r_small.latency, "{kind}: latency monotone in size");
        assert!(r_large.cost >= r_small.cost, "{kind}: cost monotone in size");
    }
}
