//! Property tests: the disk pool's accounting invariants hold under
//! arbitrary operation sequences, and the HRM never loses archived data.

use bytes::Bytes;
use proptest::prelude::*;

use gdmp_mass_storage::hrm::HierarchicalStorage;
use gdmp_mass_storage::pool::{DiskPool, EvictionPolicy};
use gdmp_mass_storage::tape::TapeSpec;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u16),
    Get(u8),
    Pin(u8),
    Unpin(u8),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u16..400).prop_map(|(n, s)| Op::Put(n, s)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Pin),
        any::<u8>().prop_map(Op::Unpin),
        any::<u8>().prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Used bytes never exceed capacity; used always equals the sum of
    /// resident file sizes; pinned files never vanish.
    #[test]
    fn pool_accounting_invariants(
        capacity in 500u64..3000,
        ops in proptest::collection::vec(arb_op(), 1..128),
        policy in prop_oneof![Just(EvictionPolicy::Lru), Just(EvictionPolicy::Fifo)],
    ) {
        let mut pool = DiskPool::new(capacity, policy);
        let mut pinned: std::collections::HashMap<String, u32> = Default::default();
        for op in ops {
            match op {
                Op::Put(n, size) => {
                    let _ = pool.put(&format!("f{n}"), Bytes::from(vec![0u8; size as usize]));
                }
                Op::Get(n) => {
                    let _ = pool.get(&format!("f{n}"));
                }
                Op::Pin(n) => {
                    let name = format!("f{n}");
                    if pool.pin(&name).is_ok() {
                        *pinned.entry(name).or_insert(0) += 1;
                    }
                }
                Op::Unpin(n) => {
                    let name = format!("f{n}");
                    if pool.unpin(&name).is_ok() {
                        let c = pinned.get_mut(&name).expect("unpin succeeded only if pinned");
                        *c -= 1;
                        if *c == 0 {
                            pinned.remove(&name);
                        }
                    }
                }
                Op::Remove(n) => {
                    let name = format!("f{n}");
                    if pool.remove(&name).is_ok() {
                        prop_assert!(!pinned.contains_key(&name), "removed a pinned file");
                    }
                }
            }
            // Invariants after every operation:
            prop_assert!(pool.used() <= pool.capacity());
            let sum: u64 = pool
                .file_names()
                .iter()
                .map(|f| pool.size_of(f).expect("listed file has a size"))
                .sum();
            prop_assert_eq!(pool.used(), sum);
            for name in pinned.keys() {
                prop_assert!(pool.contains(name), "pinned file {name} evicted");
                prop_assert!(pool.is_pinned(name));
            }
        }
    }

    /// Write-through HRM: anything stored with archive=true remains
    /// retrievable forever, no matter the eviction churn.
    #[test]
    fn archived_files_never_lost(
        pool_capacity in 300u64..1200,
        files in proptest::collection::vec((any::<u8>(), 50u16..300), 1..40),
    ) {
        let mut hrm = HierarchicalStorage::new(
            pool_capacity,
            EvictionPolicy::Lru,
            TapeSpec::classic(),
        );
        let mut stored: std::collections::HashMap<String, u8> = Default::default();
        for (tag, size) in files {
            let name = format!("f{tag}");
            if stored.contains_key(&name) {
                continue;
            }
            if size as u64 > pool_capacity {
                continue;
            }
            if hrm.store(&name, Bytes::from(vec![tag; size as usize]), true).is_ok() {
                stored.insert(name, tag);
            }
        }
        for (name, tag) in &stored {
            let out = hrm.request(name).unwrap_or_else(|e| panic!("lost {name}: {e}"));
            prop_assert!(out.data.iter().all(|b| b == tag));
        }
    }
}
