//! Property tests for the protocol machinery: framing, ranges, commands,
//! CRC, and partition/reassembly under arbitrary inputs.

use bytes::Bytes;
use proptest::prelude::*;

use gdmp_gridftp::block::{partition, Block, BlockDecoder, Reassembler};
use gdmp_gridftp::crc::crc32;
use gdmp_gridftp::protocol::{Command, Reply};
use gdmp_gridftp::ranges::ByteRanges;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any partition of any data over any channel count reassembles to the
    /// original, regardless of block size and delivery interleaving.
    #[test]
    fn partition_reassemble_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        block_size in 1usize..1500,
        channels in 1usize..8,
        order_seed in any::<u64>(),
    ) {
        let data = Bytes::from(data);
        let parts = partition(&data, block_size, channels);
        // Flatten and shuffle deterministically by the seed.
        let mut all: Vec<Block> = parts.into_iter().flatten().collect();
        let mut s = order_seed | 1;
        for i in (1..all.len()).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            all.swap(i, (s as usize) % (i + 1));
        }
        let mut r = Reassembler::new(data.len() as u64, channels);
        for b in &all {
            r.accept(b).unwrap();
        }
        prop_assert!(r.is_complete());
        prop_assert_eq!(r.into_bytes(), data);
    }

    /// The block decoder never panics on arbitrary byte streams, fed in
    /// arbitrary fragmentation.
    #[test]
    fn decoder_never_panics(
        wire in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk in 1usize..64,
    ) {
        let mut d = BlockDecoder::new();
        for c in wire.chunks(chunk) {
            d.feed(c);
            while let Ok(Some(_)) = d.next_block() {}
        }
    }

    /// ByteRanges: inserting arbitrary ranges keeps runs disjoint, sorted,
    /// non-adjacent; covered() equals the measure of the union.
    #[test]
    fn ranges_invariants(ops in proptest::collection::vec((0u64..500, 0u64..100), 0..64)) {
        let mut r = ByteRanges::new();
        let mut model = vec![false; 700];
        for (start, len) in ops {
            r.insert(start, start + len);
            for m in model.iter_mut().take((start + len) as usize).skip(start as usize) {
                *m = true;
            }
        }
        // Runs sorted, disjoint, non-adjacent.
        for w in r.runs().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "runs {:?} not separated", r.runs());
        }
        for &(s, e) in r.runs() {
            prop_assert!(s < e);
        }
        let covered_model = model.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(r.covered(), covered_model);
        // missing() is the exact complement within the domain.
        let total = 700u64;
        let missing_model = total - covered_model;
        let missing: u64 = r.missing(total).iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(missing, missing_model);
    }

    /// Restart-marker serialization round-trips.
    #[test]
    fn marker_roundtrip(ops in proptest::collection::vec((0u64..10_000, 1u64..500), 1..20)) {
        let mut r = ByteRanges::new();
        for (s, l) in ops {
            r.insert(s, s + l);
        }
        let back = ByteRanges::from_marker(&r.to_marker()).unwrap();
        prop_assert_eq!(back, r);
    }

    /// Command parsing never panics on arbitrary lines, and every parsed
    /// command re-parses from its own formatting.
    #[test]
    fn command_parse_total(line in ".{0,120}") {
        if let Ok(cmd) = Command::parse(&line) {
            let reformatted = Command::parse(&cmd.format()).unwrap();
            prop_assert_eq!(reformatted, cmd);
        }
    }

    /// Reply parsing is total and round-trips for valid codes.
    #[test]
    fn reply_roundtrip(code in 100u16..600, text in "[ -~]{0,64}") {
        let r = Reply::new(code, text.trim().to_string());
        let back = Reply::parse(&r.format()).unwrap();
        prop_assert_eq!(back.code, r.code);
        prop_assert_eq!(back.text, r.text);
    }

    /// CRC is order-sensitive and chunking-invariant.
    #[test]
    fn crc_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        split in 1usize..4096,
    ) {
        let split = split.min(data.len());
        let mut inc = gdmp_gridftp::crc::Crc32::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finalize(), crc32(&data));
    }
}
