//! End-to-end GridFTP over real loopback TCP: GSI handshake, parallel
//! extended-block transfers, partial retrieval, restart, CRC verification,
//! store, delete.

use std::sync::Arc;

use bytes::Bytes;
use gdmp_gridftp::client::{ClientConfig, ClientError, GridFtpClient};
use gdmp_gridftp::crc::crc32;
use gdmp_gridftp::server::{GridFtpServer, ServerConfig};
use gdmp_gridftp::store::{FileStore, MemStore};
use gdmp_gsi::cert::{CertificateAuthority, KeyPair};
use gdmp_gsi::name::DistinguishedName;
use gdmp_gsi::proxy::CredentialChain;

struct Grid {
    ca: CertificateAuthority,
    server_cred: CredentialChain,
    client_cred: CredentialChain,
}

fn grid() -> Grid {
    let ca =
        CertificateAuthority::new(DistinguishedName::user("cern.ch", "CERN CA"), 1, 0, 1_000_000);
    let sk = KeyPair::from_seed(2);
    let server_cred = CredentialChain::end_entity(
        ca.issue(DistinguishedName::host("cern.ch", "gdmp.cern.ch"), sk.public, 0, 900_000),
        sk,
    );
    let uk = KeyPair::from_seed(3);
    let user = CredentialChain::end_entity(
        ca.issue(DistinguishedName::user("cern.ch", "alice"), uk.public, 0, 900_000),
        uk,
    );
    // Clients authenticate with a session proxy, as grid-proxy-init would.
    let client_cred = user.delegate(4, 0, 43_200, 3).unwrap();
    Grid { ca, server_cred, client_cred }
}

fn sample(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| ((i * 31 + i / 7) % 251) as u8).collect::<Vec<_>>())
}

fn start_server(g: &Grid, files: &[(&str, Bytes)]) -> (GridFtpServer, MemStore) {
    let store = MemStore::with(files);
    let server = GridFtpServer::start(
        Arc::new(store.clone()),
        ServerConfig {
            credential: g.server_cred.clone(),
            ca_public: g.ca.public_key(),
            now: 100,
            block_size: 8 * 1024,
            require_auth: true,
        },
    )
    .expect("server starts");
    (server, store)
}

fn client(g: &Grid, server: &GridFtpServer, parallelism: u32) -> GridFtpClient {
    GridFtpClient::connect(
        server.addr(),
        ClientConfig {
            credential: g.client_cred.clone(),
            ca_public: g.ca.public_key(),
            now: 100,
            parallelism,
            buffer: 1024 * 1024,
            block_size: 8 * 1024,
            nonce: 0xfeed_f00d,
        },
    )
    .expect("client connects and authenticates")
}

#[test]
fn mutual_auth_identities() {
    let g = grid();
    let (server, _) = start_server(&g, &[]);
    let c = client(&g, &server, 1);
    assert!(c.server_identity.contains("gdmp.cern.ch"), "{}", c.server_identity);
    c.quit().unwrap();
}

#[test]
fn get_single_stream() {
    let g = grid();
    let data = sample(100_000);
    let (server, _) = start_server(&g, &[("run1.db", data.clone())]);
    let mut c = client(&g, &server, 1);
    let (got, report) = c.get("run1.db").unwrap();
    assert_eq!(got, data);
    assert_eq!(report.bytes, 100_000);
    assert_eq!(report.crc32, crc32(&data));
}

#[test]
fn get_parallel_streams() {
    let g = grid();
    let data = sample(1_000_000);
    let (server, _) = start_server(&g, &[("big.db", data.clone())]);
    for streams in [2u32, 4, 7] {
        let mut c = client(&g, &server, streams);
        let (got, report) = c.get("big.db").unwrap();
        assert_eq!(got, data, "{streams}-stream get corrupted data");
        assert_eq!(report.channels, streams);
    }
}

#[test]
fn get_missing_file_is_refused() {
    let g = grid();
    let (server, _) = start_server(&g, &[]);
    let mut c = client(&g, &server, 2);
    match c.get("ghost.db") {
        Err(ClientError::Refused(r)) => assert_eq!(r.code, 550),
        other => panic!("expected 550 refusal, got {other:?}"),
    }
}

#[test]
fn partial_get_and_manual_reassembly() {
    let g = grid();
    let data = sample(50_000);
    let (server, _) = start_server(&g, &[("f.db", data.clone())]);
    let mut c = client(&g, &server, 3);
    let first = c.get_partial("f.db", 0, 20_000).unwrap();
    let second = c.get_partial("f.db", 20_000, 30_000).unwrap();
    let mut whole = first.to_vec();
    whole.extend_from_slice(&second);
    assert_eq!(Bytes::from(whole), data);
}

#[test]
fn resume_fills_missing_ranges() {
    let g = grid();
    let data = sample(60_000);
    let (server, _) = start_server(&g, &[("f.db", data.clone())]);
    let mut c = client(&g, &server, 2);
    // Simulate an interrupted transfer: we only have the middle chunk.
    let mut partial = vec![0u8; 60_000];
    partial[10_000..30_000].copy_from_slice(&data[10_000..30_000]);
    let mut received = gdmp_gridftp::ByteRanges::new();
    received.insert(10_000, 30_000);
    let whole = c.resume("f.db", Bytes::from(partial), &received).unwrap();
    assert_eq!(whole, data);
}

#[test]
fn put_roundtrip() {
    let g = grid();
    let (server, store) = start_server(&g, &[]);
    let data = sample(300_000);
    let mut c = client(&g, &server, 3);
    c.put("upload.db", data.clone()).unwrap();
    assert_eq!(store.get("upload.db").unwrap(), data);
    // And we can read it back through the protocol.
    let (got, _) = c.get("upload.db").unwrap();
    assert_eq!(got, data);
}

#[test]
fn put_then_delete() {
    let g = grid();
    let (server, store) = start_server(&g, &[]);
    let mut c = client(&g, &server, 1);
    c.put("tmp.db", sample(1000)).unwrap();
    c.delete("tmp.db").unwrap();
    assert!(store.get("tmp.db").is_none());
    assert!(matches!(c.delete("tmp.db"), Err(ClientError::Refused(_))));
}

#[test]
fn remote_cksm_matches_local() {
    let g = grid();
    let data = sample(10_000);
    let (server, _) = start_server(&g, &[("f.db", data.clone())]);
    let mut c = client(&g, &server, 1);
    assert_eq!(c.cksm("f.db", 0, -1).unwrap(), crc32(&data));
    assert_eq!(c.cksm("f.db", 100, 50).unwrap(), crc32(&data[100..150]));
    assert_eq!(c.size("f.db").unwrap(), 10_000);
}

#[test]
fn unauthenticated_clients_rejected() {
    let g = grid();
    let (server, _) = start_server(&g, &[("f.db", sample(10))]);
    // A client whose credential was signed by a different CA must fail.
    let evil_ca =
        CertificateAuthority::new(DistinguishedName::user("evil.org", "Evil CA"), 99, 0, 1_000_000);
    let ek = KeyPair::from_seed(66);
    let evil_cred = CredentialChain::end_entity(
        evil_ca.issue(DistinguishedName::user("evil.org", "mallory"), ek.public, 0, 900_000),
        ek,
    );
    let result = GridFtpClient::connect(
        server.addr(),
        ClientConfig {
            credential: evil_cred,
            ca_public: g.ca.public_key(), // mallory even knows the right CA key
            now: 100,
            parallelism: 1,
            buffer: 64 * 1024,
            block_size: 8192,
            nonce: 1,
        },
    );
    assert!(matches!(result, Err(ClientError::Auth(_))), "foreign CA must be refused");
}

#[test]
fn expired_proxy_rejected() {
    let g = grid();
    let (server, _) = start_server(&g, &[]);
    let short_proxy = {
        // Re-derive the user's end-entity credential and make a proxy that
        // is already expired at server time (now = 100).
        let uk = KeyPair::from_seed(3);
        let user = CredentialChain::end_entity(
            g.ca.issue(DistinguishedName::user("cern.ch", "alice"), uk.public, 0, 900_000),
            uk,
        );
        user.delegate(4, 0, 50, 1).unwrap() // valid only to t=50; server is at 100
    };
    let result = GridFtpClient::connect(
        server.addr(),
        ClientConfig {
            credential: short_proxy,
            ca_public: g.ca.public_key(),
            now: 100,
            parallelism: 1,
            buffer: 64 * 1024,
            block_size: 8192,
            nonce: 1,
        },
    );
    assert!(matches!(result, Err(ClientError::Auth(_))));
}

#[test]
fn empty_file_transfers() {
    let g = grid();
    let (server, _) = start_server(&g, &[("empty.db", Bytes::new())]);
    let mut c = client(&g, &server, 2);
    let (got, _) = c.get("empty.db").unwrap();
    assert!(got.is_empty());
}

#[test]
fn concurrent_clients() {
    let g = grid();
    let data = sample(200_000);
    let (server, _) = start_server(&g, &[("shared.db", data.clone())]);
    let addr = server.addr();
    let mut handles = Vec::new();
    for i in 0..4 {
        let g2 = grid();
        let data = data.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = GridFtpClient::connect(
                addr,
                ClientConfig {
                    credential: g2.client_cred,
                    ca_public: g2.ca.public_key(),
                    now: 100,
                    parallelism: 2,
                    buffer: 256 * 1024,
                    block_size: 8192,
                    nonce: 1000 + i,
                },
            )
            .unwrap();
            let (got, _) = c.get("shared.db").unwrap();
            assert_eq!(got, data);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn striped_get_from_three_servers() {
    let g = grid();
    let data = sample(150_000);
    // Three independent stripe servers, each holding a full replica.
    let servers: Vec<_> = (0..3).map(|_| start_server(&g, &[("wide.db", data.clone())])).collect();
    let stripes: Vec<_> = servers
        .iter()
        .enumerate()
        .map(|(i, (srv, _))| {
            (
                srv.addr(),
                ClientConfig {
                    credential: g.client_cred.clone(),
                    ca_public: g.ca.public_key(),
                    now: 100,
                    parallelism: 2,
                    buffer: 256 * 1024,
                    block_size: 8 * 1024,
                    nonce: 500 + i as u64,
                },
            )
        })
        .collect();
    let got = gdmp_gridftp::client::striped_get(&stripes, "wide.db").unwrap();
    assert_eq!(got, data);
}

#[test]
fn striped_get_single_server_degenerates_to_partial_get() {
    let g = grid();
    let data = sample(10_000);
    let (server, _) = start_server(&g, &[("solo.db", data.clone())]);
    let stripes = vec![(
        server.addr(),
        ClientConfig {
            credential: g.client_cred.clone(),
            ca_public: g.ca.public_key(),
            now: 100,
            parallelism: 1,
            buffer: 64 * 1024,
            block_size: 4096,
            nonce: 9,
        },
    )];
    let got = gdmp_gridftp::client::striped_get(&stripes, "solo.db").unwrap();
    assert_eq!(got, data);
}

#[test]
fn third_party_server_to_server_copy() {
    let g = grid();
    let data = sample(400_000);
    let (src_server, _) = start_server(&g, &[("payload.db", data.clone())]);
    let (dst_server, dst_store) = start_server(&g, &[]);
    let mut src = client(&g, &src_server, 3);
    let mut dst = client(&g, &dst_server, 3);
    let moved =
        gdmp_gridftp::client::third_party_copy(&mut src, &mut dst, "payload.db", "payload.db", 3)
            .unwrap();
    assert_eq!(moved, 400_000);
    // The data flowed server→server; the destination store holds it.
    assert_eq!(dst_store.get("payload.db").unwrap(), data);
}

#[test]
fn third_party_missing_source_file() {
    let g = grid();
    let (src_server, _) = start_server(&g, &[]);
    let (dst_server, _) = start_server(&g, &[]);
    let mut src = client(&g, &src_server, 1);
    let mut dst = client(&g, &dst_server, 1);
    let err = gdmp_gridftp::client::third_party_copy(&mut src, &mut dst, "ghost.db", "ghost.db", 1)
        .unwrap_err();
    assert!(matches!(err, ClientError::Refused(_)));
}
