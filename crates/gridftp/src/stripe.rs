//! Striped data transfer: "m hosts to n hosts, possibly using multiple TCP
//! streams if also parallel" (Section 3.2).
//!
//! Striping exists because one host's NIC or bus can saturate before the
//! WAN does (Section 5.3: "in situations where a single box needs to drive
//! a very high-end network card..."). A striped transfer splits the file
//! across `m` source nodes, each with its own access link, all feeding the
//! shared wide-area bottleneck.

use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FlowSpec, Network, NetworkConfig, SessionResult};
use gdmp_simnet::time::{SimDuration, SimTime};

/// The striped-transfer environment: per-node access links in front of a
/// shared WAN bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct StripedProfile {
    /// The shared wide-area link.
    pub wan: LinkSpec,
    /// Each stripe node's access link (NIC + campus path).
    pub access: LinkSpec,
    /// Cross-traffic flows on the WAN.
    pub background_flows: u32,
    pub background_buffer: u64,
    /// Stagger between stream opens.
    pub stream_stagger: SimDuration,
}

impl StripedProfile {
    /// The paper's WAN with era-typical 10 Mb/s host NICs — the regime
    /// where striping pays.
    pub fn nic_limited() -> Self {
        StripedProfile {
            wan: LinkSpec::cern_anl(),
            access: LinkSpec {
                rate_bps: 10_000_000,
                propagation: SimDuration::from_micros(500),
                queue_capacity: 128,
            },
            background_flows: 4,
            background_buffer: 64 * 1024,
            stream_stagger: SimDuration::from_millis(137),
        }
    }

    /// Simulate a striped retrieval: `bytes` split evenly over `nodes`
    /// source hosts, each running `streams_per_node` parallel TCP streams
    /// with the given socket buffer.
    pub fn simulate(
        &self,
        bytes: u64,
        nodes: u32,
        streams_per_node: u32,
        buffer: u64,
    ) -> StripedReport {
        assert!(nodes >= 1 && streams_per_node >= 1);
        let mut net = Network::new(NetworkConfig::default());
        let wan = net.add_link(self.wan);
        for b in 0..self.background_flows {
            net.add_flow(
                FlowSpec::background(self.background_buffer)
                    .on_link(wan)
                    .open_at(SimTime(u64::from(b) * 137_000_000)),
            );
        }
        let mut ids = Vec::new();
        let per_node = bytes / u64::from(nodes);
        let mut opened = 0u64;
        for node in 0..u64::from(nodes) {
            let access = net.add_link(self.access);
            let node_bytes = if node == u64::from(nodes) - 1 {
                bytes - per_node * (u64::from(nodes) - 1)
            } else {
                per_node
            };
            let per_stream = node_bytes / u64::from(streams_per_node);
            for s in 0..u64::from(streams_per_node) {
                let sz = if s == u64::from(streams_per_node) - 1 {
                    node_bytes - per_stream * (u64::from(streams_per_node) - 1)
                } else {
                    per_stream
                };
                ids.push(
                    net.add_flow(
                        FlowSpec::transfer(sz, buffer)
                            .via(&[access, wan])
                            .open_at(SimTime::ZERO + self.stream_stagger * opened),
                    ),
                );
                opened += 1;
            }
        }
        let results = net.run();
        let flows: Vec<_> = ids.iter().map(|i| results[i.0]).collect();
        let agg = SessionResult::aggregate(&flows).expect("stripes complete");
        StripedReport {
            bytes,
            nodes,
            streams_per_node,
            data_time: agg.finished.since(agg.started),
            retransmitted_segments: agg.retransmitted_segments,
        }
    }
}

/// Outcome of one striped transfer.
#[derive(Debug, Clone, Copy)]
pub struct StripedReport {
    pub bytes: u64,
    pub nodes: u32,
    pub streams_per_node: u32,
    pub data_time: SimDuration,
    pub retransmitted_segments: u64,
}

impl StripedReport {
    pub fn throughput_mbps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.data_time.as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn striping_beats_single_nic_host() {
        let p = StripedProfile::nic_limited();
        let one = p.simulate(20 * MB, 1, 4, MB).throughput_mbps();
        let three = p.simulate(20 * MB, 3, 4, MB).throughput_mbps();
        // One host is NIC-capped near 10 Mb/s; three hosts share the WAN.
        assert!(one < 10.5, "single host exceeded its NIC: {one:.1}");
        assert!(three > 1.6 * one, "3-node striping ({three:.1}) should beat one node ({one:.1})");
    }

    #[test]
    fn striping_saturates_at_wan_share() {
        let p = StripedProfile::nic_limited();
        let four = p.simulate(20 * MB, 4, 2, MB).throughput_mbps();
        let eight = p.simulate(20 * MB, 8, 2, MB).throughput_mbps();
        // Past WAN saturation, more stripes gain little.
        assert!(eight < four * 1.5, "4 nodes {four:.1} vs 8 nodes {eight:.1}");
        assert!(four < 45.0);
    }

    #[test]
    fn stripes_conserve_bytes_with_ragged_split() {
        let p = StripedProfile::nic_limited();
        // 10 MB over 3 nodes × 3 streams: nothing divides evenly.
        let r = p.simulate(10 * MB + 7, 3, 3, 256 * 1024);
        assert_eq!(r.bytes, 10 * MB + 7);
        assert!(r.throughput_mbps() > 0.0);
    }

    #[test]
    fn deterministic() {
        let p = StripedProfile::nic_limited();
        let a = p.simulate(5 * MB, 2, 2, MB);
        let b = p.simulate(5 * MB, 2, 2, MB);
        assert_eq!(a.data_time, b.data_time);
    }
}
