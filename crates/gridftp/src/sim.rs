//! Simulated WAN transfers: the GridFTP data path over `gdmp-simnet`.
//!
//! The paper's testbed — a 45 Mb/s, 125 ms production link between CERN
//! and ANL, shared with other traffic — is reproduced here as a
//! [`WanProfile`]: a bottleneck link plus a population of window-limited
//! background flows (the untuned TCP traffic a production link of the era
//! carried). A GridFTP session of `n` parallel streams with a given socket
//! buffer is simulated packet-by-packet against that contention.

use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FastForward, FlowSpec, Network, NetworkConfig, SessionResult};
use gdmp_simnet::packet::wire;
use gdmp_simnet::time::{SimDuration, SimTime};
use gdmp_telemetry::Registry;

/// The simulated wide-area environment between two sites.
#[derive(Debug, Clone, Copy)]
pub struct WanProfile {
    pub link: LinkSpec,
    /// Long-lived cross-traffic flows sharing the bottleneck.
    pub background_flows: u32,
    /// Socket buffer of the background flows (untuned 64 KB typical).
    pub background_buffer: u64,
    /// Stagger between background-flow opens, de-phasing the cross
    /// traffic's windows across the RTT.
    pub background_stagger: SimDuration,
    /// Stagger between parallel stream opens (avoids phase lock; real
    /// clients open sockets milliseconds apart).
    pub stream_stagger: SimDuration,
    /// Warm-up before the session starts, letting cross traffic reach
    /// steady state.
    pub warmup: SimDuration,
    /// Control-channel round trips before data flows (auth + SPAS + RETR).
    pub control_rtts: u32,
    /// Fidelity mode of the underlying simulation (see [`FastForward`]).
    pub fast_forward: FastForward,
    /// Event-loop worker threads for the underlying simulation (see
    /// [`NetworkConfig::workers`]); results are identical for any value.
    pub workers: usize,
}

impl WanProfile {
    /// The paper's CERN↔ANL production path.
    pub fn cern_anl_production() -> Self {
        WanProfile {
            link: LinkSpec::cern_anl(),
            background_flows: 8,
            background_buffer: 64 * 1024,
            background_stagger: SimDuration::from_millis(137),
            stream_stagger: SimDuration::from_millis(137),
            warmup: SimDuration::from_secs(5),
            control_rtts: 8,
            fast_forward: FastForward::Auto,
            workers: 1,
        }
    }

    /// An uncontended link (for unit tests and LAN-like scenarios).
    pub fn clean(link: LinkSpec) -> Self {
        WanProfile {
            link,
            background_flows: 0,
            background_buffer: 64 * 1024,
            background_stagger: SimDuration::from_millis(137),
            stream_stagger: SimDuration::from_millis(10),
            warmup: SimDuration::ZERO,
            control_rtts: 8,
            fast_forward: FastForward::Auto,
            workers: 1,
        }
    }

    /// Disable steady-state fast-forwarding: simulate every packet.
    pub fn exact(mut self) -> Self {
        self.fast_forward = FastForward::Off;
        self
    }

    /// Run the underlying simulation on up to `workers` event-loop threads
    /// (see [`NetworkConfig::workers`]); the results do not change.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Round-trip time of the path.
    pub fn rtt(&self) -> SimDuration {
        self.link.propagation * 2
    }

    /// Analytic estimate of one cold stream's TCP slow-start duration: the
    /// RTTs the congestion window needs to double from its initial two
    /// segments up to the operating window (socket buffer capped by the
    /// stream's share of the path BDP). Used for critical-path
    /// *attribution* only — the packet simulation decides actual timing —
    /// so a deterministic closed form is exactly what's wanted.
    pub fn slow_start_estimate(&self, streams: u32, buffer: u64) -> SimDuration {
        let bdp_bytes = self.link.rate_bps as f64 / 8.0 * self.rtt().as_secs_f64();
        let share = (bdp_bytes / f64::from(streams.max(1))).min(buffer as f64);
        let target_segments = (share / f64::from(wire::MSS)).max(2.0);
        let doublings = (target_segments / 2.0).log2().ceil().max(0.0);
        SimDuration::from_nanos((self.rtt().nanos() as f64 * doublings) as u64)
    }

    /// Record the standard child spans of one transfer attempt under the
    /// caller's currently open span: session setup (named `reconnect` when
    /// re-establishing after a failure), estimated TCP slow-start (cold
    /// sessions only), and the steady remainder (`transfer_steady`).
    /// `data_elapsed` is the attempt's actual data-phase duration, possibly
    /// truncated by a mid-flight fault. The children tile
    /// `[base_ns, base_ns + setup + data_elapsed]`, so critical-path
    /// extraction can attribute end-to-end latency to reconnects,
    /// slow-start, and transfer without bespoke bookkeeping at every call
    /// site.
    #[allow(clippy::too_many_arguments)]
    pub fn trace_transfer(
        &self,
        reg: &Registry,
        base_ns: u64,
        setup: SimDuration,
        data_elapsed: SimDuration,
        streams: u32,
        buffer: u64,
        warm: bool,
        reconnect: bool,
    ) {
        if !reg.is_enabled() {
            return;
        }
        let mut t = base_ns;
        if setup > SimDuration::ZERO {
            let name = if reconnect { "reconnect" } else { "gridftp_setup" };
            let sp = reg.span_start(name, t);
            t += setup.nanos();
            reg.span_end(sp, t);
        }
        let mut data_ns = data_elapsed.nanos();
        if !warm {
            let ss = self.slow_start_estimate(streams, buffer).nanos().min(data_ns);
            if ss > 0 {
                let sp = reg.span_start("slow_start", t);
                t += ss;
                reg.span_end(sp, t);
                data_ns -= ss;
            }
        }
        if data_ns > 0 {
            let sp = reg.span_start("transfer_steady", t);
            reg.span_end(sp, t + data_ns);
        }
    }

    /// Simulate one GridFTP retrieval of `bytes` over `streams` parallel
    /// TCP connections with the given socket buffer.
    pub fn simulate_transfer(&self, bytes: u64, streams: u32, buffer: u64) -> SimTransferReport {
        self.simulate_transfer_telemetry(bytes, streams, buffer, &Registry::disabled())
    }

    /// [`WanProfile::simulate_transfer`] over an already-established
    /// session: the data channels skip the handshake and start with their
    /// congestion windows fully open (GridFTP keeps its parallel data
    /// connections alive between retrievals, so a follow-up pull on the
    /// same session does not re-pay TCP slow-start). `setup_time` in the
    /// report still describes a cold session — callers reusing a session
    /// should charge it zero setup, as [`SimTransferReport::data_time`]
    /// alone covers a warm pull.
    pub fn simulate_transfer_warm(
        &self,
        bytes: u64,
        streams: u32,
        buffer: u64,
    ) -> SimTransferReport {
        self.simulate_warm(bytes, streams, buffer, &Registry::disabled(), false, true).0
    }

    /// [`WanProfile::simulate_transfer`] with a telemetry sink: the network
    /// simulation publishes link/flow statistics into `reg`, and the
    /// session outcome is recorded as GridFTP-level metrics.
    pub fn simulate_transfer_telemetry(
        &self,
        bytes: u64,
        streams: u32,
        buffer: u64,
        reg: &Registry,
    ) -> SimTransferReport {
        self.simulate(bytes, streams, buffer, reg, false).0
    }

    /// [`WanProfile::simulate_transfer`] that also returns the session's
    /// cumulative progress curve, for callers that need to know how many
    /// bytes had landed by a given elapsed time (mid-transfer faults,
    /// straggler detection).
    pub fn simulate_transfer_progress(
        &self,
        bytes: u64,
        streams: u32,
        buffer: u64,
    ) -> (SimTransferReport, TransferProgress) {
        let (report, progress) = self.simulate(bytes, streams, buffer, &Registry::disabled(), true);
        (report, progress.expect("progress requested"))
    }

    fn simulate(
        &self,
        bytes: u64,
        streams: u32,
        buffer: u64,
        reg: &Registry,
        want_progress: bool,
    ) -> (SimTransferReport, Option<TransferProgress>) {
        self.simulate_warm(bytes, streams, buffer, reg, want_progress, false)
    }

    fn simulate_warm(
        &self,
        bytes: u64,
        streams: u32,
        buffer: u64,
        reg: &Registry,
        want_progress: bool,
        warm: bool,
    ) -> (SimTransferReport, Option<TransferProgress>) {
        assert!(streams >= 1, "at least one stream");
        let mut net = Network::new(NetworkConfig {
            fast_forward: self.fast_forward,
            workers: self.workers,
            ..NetworkConfig::default()
        });
        net.add_link(self.link);
        net.set_telemetry(reg.clone());
        for b in 0..self.background_flows {
            net.add_flow(
                FlowSpec::background(self.background_buffer)
                    .open_at(SimTime::ZERO + self.background_stagger * u64::from(b)),
            );
        }
        let session_open = SimTime::ZERO + self.warmup;
        let per = bytes / u64::from(streams);
        let mut ids = Vec::with_capacity(streams as usize);
        for s in 0..u64::from(streams) {
            let sz = if s == u64::from(streams) - 1 {
                bytes - per * (u64::from(streams) - 1)
            } else {
                per
            };
            let mut flow =
                FlowSpec::transfer(sz, buffer).open_at(session_open + self.stream_stagger * s);
            if warm {
                // Resume at the stream's fair share of the path BDP — the
                // steady-state window an established connection holds.
                let bdp_bytes = self.link.rate_bps as f64 / 8.0 * self.rtt().as_secs_f64();
                let share = bdp_bytes / f64::from(streams) / f64::from(wire::MSS);
                flow = flow.warm_start(share.max(2.0));
            }
            ids.push(net.add_flow(flow));
        }
        if want_progress {
            net.enable_progress_trace();
        }
        let results = net.run();
        let session: Vec<_> = ids.iter().map(|i| results[i.0]).collect();
        let agg =
            SessionResult::aggregate(&session).expect("all session flows are finite and complete");
        let data_time = agg.finished.since(agg.started);
        let setup = SimDuration(self.rtt().nanos() * u64::from(self.control_rtts));
        if reg.is_enabled() {
            let streams_label = streams.to_string();
            let labels = [("streams", streams_label.as_str())];
            reg.counter_add("gridftp_sessions", &labels, 1);
            reg.counter_add("gridftp_bytes", &labels, bytes);
            reg.counter_add("gridftp_retransmitted_segments", &labels, agg.retransmitted_segments);
            reg.counter_add("gridftp_timeouts", &labels, agg.timeouts);
            reg.observe("gridftp_data_time_ns", &[], data_time.nanos());
        }
        let progress = want_progress.then(|| {
            // Merge the per-stream traces into one monotone session curve:
            // every sample becomes a delta at its timestamp, sorted and
            // prefix-summed. Times are rebased onto the data phase start.
            let mut deltas: Vec<(SimDuration, u64)> = Vec::new();
            for id in &ids {
                let mut prev = 0u64;
                for &(t, b) in net.progress_trace(*id).unwrap_or(&[]) {
                    if b > prev {
                        let elapsed =
                            if t > agg.started { t.since(agg.started) } else { SimDuration::ZERO };
                        deltas.push((elapsed, b - prev));
                        prev = b;
                    }
                }
            }
            deltas.sort_by_key(|&(t, _)| t);
            let mut samples = Vec::with_capacity(deltas.len() + 1);
            let mut cum = 0u64;
            for (t, d) in deltas {
                cum += d;
                match samples.last_mut() {
                    Some((last_t, last_b)) if *last_t == t => *last_b = cum,
                    _ => samples.push((t, cum)),
                }
            }
            TransferProgress { samples, bytes, data_time }
        });
        let report = SimTransferReport {
            bytes,
            streams,
            buffer,
            data_time,
            setup_time: setup,
            retransmitted_segments: agg.retransmitted_segments,
            timeouts: agg.timeouts,
            events_processed: net.events_processed(),
            events_skipped: net.events_skipped(),
        };
        (report, progress)
    }
}

/// Cumulative progress of one simulated session's data phase.
///
/// Samples are `(elapsed since the data phase began, cumulative bytes
/// acked across all streams)`, monotone in both coordinates.
#[derive(Debug, Clone)]
pub struct TransferProgress {
    samples: Vec<(SimDuration, u64)>,
    bytes: u64,
    data_time: SimDuration,
}

impl TransferProgress {
    /// Bytes landed by `elapsed` into the data phase, interpolating
    /// linearly between samples. Clamps to the full size once the data
    /// phase is over.
    pub fn bytes_by(&self, elapsed: SimDuration) -> u64 {
        if elapsed >= self.data_time {
            return self.bytes;
        }
        // Last sample at or before `elapsed`.
        let idx = self.samples.partition_point(|&(t, _)| t <= elapsed);
        let (t0, b0) = if idx == 0 { (SimDuration::ZERO, 0) } else { self.samples[idx - 1] };
        let (t1, b1) = match self.samples.get(idx) {
            Some(&s) => s,
            None => (self.data_time, self.bytes),
        };
        if t1 <= t0 {
            return b1.min(self.bytes);
        }
        let frac = (elapsed - t0).as_secs_f64() / (t1 - t0).as_secs_f64();
        let interp = b0 as f64 + (b1 - b0) as f64 * frac;
        (interp as u64).min(self.bytes)
    }

    /// The merged `(elapsed, cumulative bytes)` samples.
    pub fn samples(&self) -> &[(SimDuration, u64)] {
        &self.samples
    }

    /// Total bytes of the session.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Duration of the data phase.
    pub fn data_time(&self) -> SimDuration {
        self.data_time
    }
}

/// Outcome of one simulated transfer.
#[derive(Debug, Clone, Copy)]
pub struct SimTransferReport {
    pub bytes: u64,
    pub streams: u32,
    pub buffer: u64,
    /// Wall time of the data phase (first stream open → last byte acked).
    pub data_time: SimDuration,
    /// Control-channel setup overhead.
    pub setup_time: SimDuration,
    pub retransmitted_segments: u64,
    pub timeouts: u64,
    /// Simulator events dispatched for this transfer.
    pub events_processed: u64,
    /// Events avoided by steady-state fast-forwarding (0 when exact).
    pub events_skipped: u64,
}

impl SimTransferReport {
    /// Data-phase throughput in Mb/s — what Figures 5 and 6 plot.
    pub fn throughput_mbps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.data_time.as_secs_f64() / 1e6
    }

    /// End-to-end duration including control setup.
    pub fn total_time(&self) -> SimDuration {
        self.setup_time + self.data_time
    }

    /// End-to-end throughput including setup (what an application sees).
    pub fn effective_mbps(&self) -> f64 {
        self.bytes as f64 * 8.0 / self.total_time().as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn clean_link_single_stream_window_limited() {
        let p = WanProfile::clean(LinkSpec::cern_anl());
        let r = p.simulate_transfer(25 * MB, 1, 64 * 1024);
        let t = r.throughput_mbps();
        assert!((2.5..4.5).contains(&t), "expected ~4 Mb/s window-limited, got {t:.2}");
    }

    #[test]
    fn parallel_streams_scale_on_contended_link() {
        let p = WanProfile::cern_anl_production();
        let one = p.simulate_transfer(25 * MB, 1, 64 * 1024).throughput_mbps();
        let eight = p.simulate_transfer(25 * MB, 8, 64 * 1024).throughput_mbps();
        assert!(eight > 3.0 * one, "8 untuned streams ({eight:.1}) should far exceed 1 ({one:.1})");
    }

    #[test]
    fn tuned_buffer_beats_untuned_single_stream() {
        let p = WanProfile::cern_anl_production();
        let untuned = p.simulate_transfer(50 * MB, 1, 64 * 1024).throughput_mbps();
        let tuned = p.simulate_transfer(50 * MB, 1, 1024 * 1024).throughput_mbps();
        assert!(
            tuned > 1.5 * untuned,
            "tuned single stream ({tuned:.1}) should beat untuned ({untuned:.1})"
        );
    }

    #[test]
    fn small_file_is_slow_start_bound() {
        let p = WanProfile::cern_anl_production();
        let small = p.simulate_transfer(MB, 4, 1024 * 1024).throughput_mbps();
        let large = p.simulate_transfer(50 * MB, 4, 1024 * 1024).throughput_mbps();
        assert!(
            small < large / 2.0,
            "1 MB file ({small:.1}) cannot amortize slow start like 50 MB ({large:.1})"
        );
    }

    #[test]
    fn setup_overhead_scales_with_rtt() {
        let p = WanProfile::cern_anl_production();
        let r = p.simulate_transfer(MB, 1, 64 * 1024);
        assert_eq!(r.setup_time.nanos(), p.rtt().nanos() * 8);
        assert!(r.effective_mbps() < r.throughput_mbps());
    }

    #[test]
    fn reports_are_deterministic() {
        let p = WanProfile::cern_anl_production();
        let a = p.simulate_transfer(10 * MB, 3, 256 * 1024);
        let b = p.simulate_transfer(10 * MB, 3, 256 * 1024);
        assert_eq!(a.data_time, b.data_time);
        assert_eq!(a.retransmitted_segments, b.retransmitted_segments);
    }

    #[test]
    fn fast_forward_matches_exact_on_quick_grid() {
        // Auto vs Off across a small streams × buffer grid: byte totals
        // always agree exactly; throughput agrees within 2 %; loss behaviour
        // (retransmit counts) is preserved.
        let p = WanProfile::cern_anl_production();
        for streams in [1u32, 4] {
            for buffer in [64 * 1024u64, 1024 * 1024] {
                let auto = p.simulate_transfer(25 * MB, streams, buffer);
                let exact = p.exact().simulate_transfer(25 * MB, streams, buffer);
                assert_eq!(auto.bytes, exact.bytes);
                assert_eq!(exact.events_skipped, 0);
                assert_eq!(
                    auto.retransmitted_segments, exact.retransmitted_segments,
                    "{streams}x{buffer}: loss behaviour diverged"
                );
                let (a, e) = (auto.throughput_mbps(), exact.throughput_mbps());
                assert!(
                    (a - e).abs() / e < 0.02,
                    "{streams}x{buffer}: auto {a:.3} vs exact {e:.3} Mb/s"
                );
            }
        }
    }

    #[test]
    fn fast_forward_skips_most_events_when_tuned() {
        // A tuned uncontended bulk transfer is steady state almost
        // throughout — the analytic path should carry the bulk of it.
        let p = WanProfile::clean(LinkSpec::cern_anl());
        let auto = p.simulate_transfer(100 * MB, 1, MB);
        let exact = p.exact().simulate_transfer(100 * MB, 1, MB);
        assert!(
            exact.events_processed >= 10 * auto.events_processed,
            "expected ≥10x fewer events: exact {} vs auto {}",
            exact.events_processed,
            auto.events_processed
        );
        let (a, e) = (auto.throughput_mbps(), exact.throughput_mbps());
        assert!((a - e).abs() / e < 0.02, "auto {a:.3} vs exact {e:.3} Mb/s");
    }

    #[test]
    fn fast_forward_is_deterministic() {
        let p = WanProfile::cern_anl_production();
        let a = p.simulate_transfer(25 * MB, 4, MB);
        let b = p.simulate_transfer(25 * MB, 4, MB);
        assert_eq!(a.data_time, b.data_time);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.events_skipped, b.events_skipped);
    }

    #[test]
    fn uneven_split_conserves_bytes() {
        // 10 MB over 3 streams: 3,333,333 ×2 + 3,333,334.
        let p = WanProfile::clean(LinkSpec::cern_anl());
        let r = p.simulate_transfer(10 * MB, 3, 256 * 1024);
        assert_eq!(r.bytes, 10 * MB);
        assert!(r.throughput_mbps() > 0.0);
    }
    #[test]
    fn trace_transfer_children_tile_the_attempt() {
        let p = WanProfile::clean(LinkSpec::cern_anl());
        let reg = Registry::new();
        let root = reg.span_start("attempt", 0);
        let setup = SimDuration::from_millis(100);
        let data = SimDuration::from_secs(2);
        p.trace_transfer(&reg, 0, setup, data, 4, 256 * 1024, false, false);
        reg.span_end(root, (setup + data).nanos());
        let spans = reg.spans();
        let total: u64 =
            spans.iter().filter(|s| s.parent.is_some()).map(|s| s.duration_ns().unwrap()).sum();
        assert_eq!(total, (setup + data).nanos(), "children must tile the attempt exactly");
        let names: Vec<&str> =
            spans.iter().filter(|s| s.parent.is_some()).map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["gridftp_setup", "slow_start", "transfer_steady"]);
        // Warm pulls have no setup and no slow-start.
        let reg = Registry::new();
        let root = reg.span_start("attempt", 0);
        p.trace_transfer(&reg, 0, SimDuration::ZERO, data, 4, 256 * 1024, true, false);
        reg.span_end(root, data.nanos());
        let names: Vec<String> =
            reg.spans().iter().filter(|s| s.parent.is_some()).map(|s| s.name.clone()).collect();
        assert_eq!(names, ["transfer_steady"]);
        // A reconnect renames the setup span.
        let reg = Registry::new();
        let root = reg.span_start("attempt", 0);
        p.trace_transfer(&reg, 0, setup, data, 4, 256 * 1024, false, true);
        reg.span_end(root, (setup + data).nanos());
        assert!(reg.spans().iter().any(|s| s.name == "reconnect"));
    }

    #[test]
    fn slow_start_estimate_is_deterministic_and_bounded() {
        let p = WanProfile::cern_anl_production();
        let a = p.slow_start_estimate(4, 256 * 1024);
        assert_eq!(a, p.slow_start_estimate(4, 256 * 1024));
        assert!(a > SimDuration::ZERO);
        // More streams -> smaller per-stream window -> shorter slow-start.
        assert!(p.slow_start_estimate(16, 256 * 1024) <= a);
        // A tiny buffer caps the window almost immediately.
        assert!(p.slow_start_estimate(1, 4 * 1024) <= p.rtt() * 2);
    }
}
