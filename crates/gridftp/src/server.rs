//! A GridFTP server over real TCP sockets (the wuftpd-derived daemon of
//! the paper, in miniature).
//!
//! Binds to a loopback port, speaks the control protocol of
//! [`crate::protocol`], authenticates clients with the simulated GSI, and
//! serves parallel extended-block-mode transfers over striped-passive data
//! channels. Used by integration tests and examples to demonstrate the
//! protocol code against a real network stack; the WAN-scale experiments
//! use the deterministic simulator instead.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use gdmp_gsi::context::{make_token, verify_token, AuthToken};
use gdmp_gsi::proxy::CredentialChain;

use crate::block::{partition, Block, BlockDecoder, Reassembler};
use crate::crc::crc32;
use crate::protocol::{replies, Command, Reply};
use crate::store::FileStore;

/// Server configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Host credential presented to clients.
    pub credential: CredentialChain,
    /// Trusted CA verification key.
    pub ca_public: u64,
    /// GSI time for certificate validation.
    pub now: u64,
    /// Block size for extended-mode data blocks.
    pub block_size: usize,
    /// Refuse file operations before authentication.
    pub require_auth: bool,
}

/// A running server; dropping it (or calling [`GridFtpServer::stop`])
/// shuts the listener down.
pub struct GridFtpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl GridFtpServer {
    /// Start on an ephemeral loopback port.
    pub fn start(store: Arc<dyn FileStore>, cfg: ServerConfig) -> std::io::Result<GridFtpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let nonce_counter = Arc::new(AtomicU64::new(0x6d70_6467_0000_0001));
        let handle = std::thread::spawn(move || {
            while !shutdown2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let store = Arc::clone(&store);
                        let cfg = cfg.clone();
                        let nonce = nonce_counter.fetch_add(0x9e37_79b9, Ordering::Relaxed);
                        std::thread::spawn(move || {
                            let _ = Session::new(store, cfg, nonce).run(stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(GridFtpServer { addr, shutdown, handle: Some(handle) })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GridFtpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Payload of the ADAT exchange (hex-encoded JSON on the wire).
#[derive(serde::Serialize, serde::Deserialize)]
pub(crate) struct AdatPayload {
    pub token: AuthToken,
    pub nonce: u64,
}

pub(crate) fn hex_encode(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok()).collect()
}

struct Session {
    store: Arc<dyn FileStore>,
    cfg: ServerConfig,
    nonce: u64,
    authed: Option<String>,
    auth_started: bool,
    parallelism: u32,
    mode: char,
    buffer: u64,
    listeners: Vec<TcpListener>,
    /// Active-mode (SPOR) targets: the server connects out to these for
    /// the next transfer (third-party data flow to another server).
    active_targets: Vec<SocketAddr>,
}

impl Session {
    fn new(store: Arc<dyn FileStore>, cfg: ServerConfig, nonce: u64) -> Self {
        Session {
            store,
            cfg,
            nonce,
            authed: None,
            auth_started: false,
            parallelism: 1,
            mode: 'S',
            buffer: 64 * 1024,
            listeners: Vec::new(),
            active_targets: Vec::new(),
        }
    }

    fn run(&mut self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        send(&mut writer, &replies::ready(self.nonce))?;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok(()); // peer hung up
            }
            let reply = match Command::parse(&line) {
                Err(e) => replies::syntax(&e.to_string()),
                Ok(Command::Quit) => {
                    send(&mut writer, &replies::bye())?;
                    return Ok(());
                }
                Ok(cmd) => self.handle(cmd, &mut writer)?,
            };
            send(&mut writer, &reply)?;
        }
    }

    fn handle(&mut self, cmd: Command, writer: &mut TcpStream) -> std::io::Result<Reply> {
        // Authentication gate.
        if self.cfg.require_auth && self.authed.is_none() {
            match cmd {
                Command::AuthGssapi | Command::Adat(_) | Command::Noop => {}
                _ => return Ok(Reply::new(530, "please authenticate first")),
            }
        }
        Ok(match cmd {
            Command::AuthGssapi => {
                self.auth_started = true;
                replies::adat_continue()
            }
            Command::Adat(hex) => self.handle_adat(&hex),
            Command::TypeImage => replies::ok("type set to I"),
            Command::Mode(m) => {
                self.mode = m;
                replies::ok(&format!("mode set to {m}"))
            }
            Command::Sbuf(n) => {
                self.buffer = n;
                replies::ok(&format!("socket buffer set to {n}"))
            }
            Command::OptsParallelism(n) => {
                self.parallelism = n.max(1);
                replies::ok(&format!("parallelism set to {}", self.parallelism))
            }
            Command::Spas(n) => self.handle_spas(n),
            Command::Spor(addrs) => {
                self.listeners.clear();
                self.active_targets = addrs;
                replies::ok("entering striped active mode")
            }
            Command::Size(path) => match self.store.size(&path) {
                Some(n) => replies::size(n),
                None => replies::not_found(&path),
            },
            Command::Cksm { offset, length, path } => match self.store.get(&path) {
                None => replies::not_found(&path),
                Some(data) => {
                    let start = offset.min(data.len() as u64) as usize;
                    let end = if length < 0 {
                        data.len()
                    } else {
                        (start + length as usize).min(data.len())
                    };
                    replies::cksm(crc32(&data[start..end]))
                }
            },
            Command::Retr(path) => match self.store.get(&path) {
                None => replies::not_found(&path),
                Some(data) => self.send_data(writer, data, 0)?,
            },
            Command::EretPartial { offset, length, path } => match self.store.get(&path) {
                None => replies::not_found(&path),
                Some(data) => {
                    let start = offset.min(data.len() as u64) as usize;
                    let end = (start + length as usize).min(data.len());
                    let slice = data.slice(start..end);
                    self.send_data(writer, slice, start as u64)?
                }
            },
            Command::Stor { path, size } => self.recv_data(writer, &path, size)?,
            Command::Dele(path) => match self.store.delete(&path) {
                Ok(()) => replies::deleted(),
                Err(_) => replies::not_found(&path),
            },
            Command::Noop => replies::ok("noop"),
            Command::Quit => unreachable!("handled by caller"),
        })
    }

    fn handle_adat(&mut self, hex: &str) -> Reply {
        if !self.auth_started {
            return replies::bad_sequence("AUTH GSSAPI first");
        }
        let Some(raw) = hex_decode(hex) else {
            return replies::denied("undecodable token");
        };
        let Ok(payload) = serde_json::from_slice::<AdatPayload>(&raw) else {
            return replies::denied("malformed token");
        };
        match verify_token(&payload.token, self.nonce, self.cfg.ca_public, self.cfg.now) {
            Err(e) => replies::denied(&e.to_string()),
            Ok(identity) => {
                self.authed = Some(identity.to_string());
                // Mutual leg: prove our own identity over the client nonce.
                let ours = make_token(&self.cfg.credential, payload.nonce);
                let resp = AdatPayload { token: ours, nonce: self.nonce };
                let encoded = hex_encode(&serde_json::to_vec(&resp).expect("token serializes"));
                replies::auth_ok(&encoded)
            }
        }
    }

    fn handle_spas(&mut self, n: u32) -> Reply {
        self.listeners.clear();
        let mut ports = Vec::new();
        for _ in 0..n {
            match TcpListener::bind("127.0.0.1:0") {
                Ok(l) => {
                    ports.push(l.local_addr().map(|a| a.port()).unwrap_or(0));
                    self.listeners.push(l);
                }
                Err(_) => return Reply::new(425, "cannot open data ports"),
            }
        }
        self.parallelism = n;
        replies::spas(&ports)
    }

    /// Serve a RETR/ERET over the striped-passive channels, or — in SPOR
    /// (active) mode — by connecting out to another server's data ports
    /// (third-party transfer).
    fn send_data(
        &mut self,
        writer: &mut TcpStream,
        data: Bytes,
        base_offset: u64,
    ) -> std::io::Result<Reply> {
        if self.listeners.is_empty() && self.active_targets.is_empty() {
            return Ok(replies::bad_sequence("SPAS or SPOR before RETR"));
        }
        if self.mode != 'E' {
            return Ok(replies::bad_sequence("MODE E required for parallel transfer"));
        }
        send(writer, &replies::opening())?;
        let channels = self.listeners.len().max(self.active_targets.len());
        let mut parts = partition(&data, self.cfg.block_size, channels);
        for list in &mut parts {
            for b in list.iter_mut() {
                if !b.is_eod() {
                    b.offset += base_offset;
                }
            }
        }
        let mut threads: Vec<std::thread::JoinHandle<std::io::Result<()>>> = Vec::new();
        if self.active_targets.is_empty() {
            for (listener, blocks) in self.listeners.drain(..).zip(parts) {
                threads.push(std::thread::spawn(move || -> std::io::Result<()> {
                    let (mut conn, _) = accept_with_deadline(&listener, Duration::from_secs(10))?;
                    for b in &blocks {
                        conn.write_all(&b.encode())?;
                    }
                    conn.flush()?;
                    Ok(())
                }));
            }
        } else {
            for (addr, blocks) in std::mem::take(&mut self.active_targets).into_iter().zip(parts) {
                threads.push(std::thread::spawn(move || -> std::io::Result<()> {
                    let mut conn = TcpStream::connect(addr)?;
                    for b in &blocks {
                        conn.write_all(&b.encode())?;
                    }
                    conn.flush()?;
                    Ok(())
                }));
            }
        }
        let mut failed = false;
        for t in threads {
            failed |= t.join().map(|r| r.is_err()).unwrap_or(true);
        }
        Ok(if failed { Reply::new(426, "data connection failed") } else { replies::complete() })
    }

    /// Receive a STOR over the striped-passive channels.
    fn recv_data(
        &mut self,
        writer: &mut TcpStream,
        path: &str,
        size: u64,
    ) -> std::io::Result<Reply> {
        if self.listeners.is_empty() {
            return Ok(replies::bad_sequence("SPAS before STOR"));
        }
        if self.mode != 'E' {
            return Ok(replies::bad_sequence("MODE E required for parallel transfer"));
        }
        send(writer, &replies::opening())?;
        let channels = self.listeners.len();
        let mut threads = Vec::new();
        for listener in self.listeners.drain(..) {
            threads.push(std::thread::spawn(move || -> std::io::Result<Vec<Block>> {
                let (mut conn, _) = accept_with_deadline(&listener, Duration::from_secs(10))?;
                let mut dec = BlockDecoder::new();
                let mut out = Vec::new();
                let mut buf = [0u8; 64 * 1024];
                loop {
                    let n = conn.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    dec.feed(&buf[..n]);
                    while let Some(b) = dec.next_block().map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })? {
                        let done = b.is_eod();
                        out.push(b);
                        if done {
                            return Ok(out);
                        }
                    }
                }
                Ok(out)
            }));
        }
        let mut reasm = Reassembler::new(size, channels);
        let mut failed = false;
        for t in threads {
            match t.join() {
                Ok(Ok(blocks)) => {
                    for b in blocks {
                        if reasm.accept(&b).is_err() {
                            failed = true;
                        }
                    }
                }
                _ => failed = true,
            }
        }
        if failed || !reasm.is_complete() {
            return Ok(Reply::new(451, "upload incomplete"));
        }
        match self.store.put(path, reasm.into_bytes()) {
            Ok(()) => Ok(replies::complete()),
            Err(e) => Ok(Reply::new(452, e)),
        }
    }
}

fn send(stream: &mut TcpStream, reply: &Reply) -> std::io::Result<()> {
    stream.write_all(reply.format().as_bytes())?;
    stream.write_all(b"\r\n")
}

/// Accept with a deadline on a listener left in non-blocking-capable state.
pub(crate) fn accept_with_deadline(
    listener: &TcpListener,
    deadline: Duration,
) -> std::io::Result<(TcpStream, SocketAddr)> {
    listener.set_nonblocking(true)?;
    let start = std::time::Instant::now();
    loop {
        match listener.accept() {
            Ok(pair) => {
                pair.0.set_nonblocking(false)?;
                pair.0.set_read_timeout(Some(Duration::from_secs(30)))?;
                return Ok(pair);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if start.elapsed() > deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no data connection arrived",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data = b"\x00\x01\xfe\xff grid";
        assert_eq!(hex_decode(&hex_encode(data)).unwrap(), data);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }
}
