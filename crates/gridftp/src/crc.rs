//! CRC-32 (IEEE 802.3) — the Data Mover's end-to-end integrity check.
//!
//! The paper (Section 4.3): "we use the built-in error correction in
//! GridFTP plus an additional CRC error check to guarantee correct and
//! uncorrupted file transfer" — TCP's 16-bit checksum is too weak for
//! multi-gigabyte transfers.

/// Reflected CRC-32 with the IEEE polynomial, table-driven.
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Incrementally absorb data (streams absorb block by block).
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC of a buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector: CRC32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(97) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 4096];
        data[100] = 0x55;
        let base = crc32(&data);
        for pos in [0usize, 1, 2048, 4095] {
            let mut mutated = data.clone();
            mutated[pos] ^= 1;
            assert_ne!(crc32(&mutated), base, "flip at {pos} undetected");
        }
    }

    #[test]
    fn detects_transpositions() {
        let a = crc32(b"abcdef");
        let b = crc32(b"abdcef");
        assert_ne!(a, b);
    }
}
