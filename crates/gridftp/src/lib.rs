//! # gdmp-gridftp — the GridFTP data transfer protocol (Section 3.2)
//!
//! The transport engine of the reproduction, in two halves:
//!
//! * **Protocol machinery** usable over real sockets: control-channel
//!   commands/replies with GSI authentication ([`protocol`], [`server`],
//!   [`client`]), extended block mode with parallel data channels
//!   ([`block`]), partial transfers and restart markers ([`ranges`]), and
//!   the CRC-32 integrity check ([`crc`]). [`server::GridFtpServer`] and
//!   [`client::GridFtpClient`] run against each other over loopback TCP.
//! * **WAN performance simulation** ([`sim`], [`tuning`]): the paper's
//!   45 Mb/s / 125 ms CERN↔ANL path with production cross-traffic,
//!   driven by the packet-level TCP model of `gdmp-simnet` — the engine
//!   behind Figures 5 and 6.

pub mod block;
pub mod client;
pub mod crc;
pub mod protocol;
pub mod ranges;
pub mod server;
pub mod sim;
pub mod store;
pub mod stripe;
pub mod tuning;

pub use block::{Block, BlockDecoder, Reassembler};
pub use client::{ClientConfig, ClientError, GetReport, GridFtpClient};
pub use crc::{crc32, Crc32};
pub use ranges::ByteRanges;
pub use server::{GridFtpServer, ServerConfig};
pub use sim::{SimTransferReport, WanProfile};
pub use store::{FileStore, MemStore};
pub use stripe::{StripedProfile, StripedReport};
pub use tuning::{tune, TuningAdvice};
