//! TCP tuning tools (Section 6's methodology).
//!
//! "To determine the optimal TCP buffer size, we use the following standard
//! formula: `optimal TCP buffer = RTT × (speed of bottleneck link)`. The
//! RTT is measured using ping, and the speed of the bottleneck link using
//! pipechar. A simple method for the optimal number of parallel streams is
//! not yet known; we typically run multiple iperf tests with various
//! numbers of streams and compare the results."

use gdmp_simnet::probe::{optimal_buffer_bytes, ping, pipechar};
use gdmp_simnet::time::SimDuration;

use crate::sim::WanProfile;

/// The product of the tuning workflow.
#[derive(Debug, Clone)]
pub struct TuningAdvice {
    /// Measured round-trip time (ping).
    pub rtt: SimDuration,
    /// Measured bottleneck bandwidth (pipechar), bits/second.
    pub bottleneck_bps: f64,
    /// `RTT × bottleneck` in bytes.
    pub optimal_buffer: u64,
    /// Best stream count found by the iperf-style sweep.
    pub recommended_streams: u32,
    /// The sweep itself: `(streams, Mb/s)`.
    pub sweep: Vec<(u32, f64)>,
}

/// Measure the path and sweep stream counts, as the paper's authors did.
///
/// `probe_bytes` sets the size of each iperf-style trial transfer.
pub fn tune(profile: &WanProfile, probe_bytes: u64, max_streams: u32) -> TuningAdvice {
    let rtt = ping(&profile.link, 10).rtt;
    let bottleneck = pipechar(&profile.link).bottleneck_bps;
    let buffer = optimal_buffer_bytes(rtt, bottleneck);
    let mut sweep = Vec::new();
    let mut best = (1u32, f64::MIN);
    for n in 1..=max_streams {
        let tput = profile.simulate_transfer(probe_bytes, n, buffer).throughput_mbps();
        sweep.push((n, tput));
        if tput > best.1 {
            best = (n, tput);
        }
    }
    TuningAdvice {
        rtt,
        bottleneck_bps: bottleneck,
        optimal_buffer: buffer,
        recommended_streams: best.0,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp_simnet::link::LinkSpec;

    #[test]
    fn advice_matches_paper_formula() {
        let p = WanProfile::cern_anl_production();
        let advice = tune(&p, 10 * 1024 * 1024, 4);
        // 45 Mb/s × ~125 ms ≈ 703 KB.
        assert!((650_000..760_000).contains(&advice.optimal_buffer), "{}", advice.optimal_buffer);
        assert!((advice.bottleneck_bps - 45e6).abs() / 45e6 < 0.02);
        assert_eq!(advice.sweep.len(), 4);
        assert!(advice.recommended_streams >= 1 && advice.recommended_streams <= 4);
    }

    #[test]
    fn paper_finding_four_to_eight_streams_good() {
        // "We usually find that 4-8 streams is optimal": with tuned buffers
        // on the production profile, going beyond a few streams must not
        // help much. Compare 4 vs 1.
        let p = WanProfile::cern_anl_production();
        let advice = tune(&p, 20 * 1024 * 1024, 5);
        let one = advice.sweep[0].1;
        let four = advice.sweep[3].1;
        assert!(four > one, "parallelism should help: 1→{one:.1}, 4→{four:.1}");
    }

    #[test]
    fn clean_fast_link_needs_no_parallelism() {
        let p = WanProfile::clean(LinkSpec {
            rate_bps: 100_000_000,
            propagation: SimDuration::from_micros(500),
            queue_capacity: 512,
        });
        let advice = tune(&p, 5 * 1024 * 1024, 3);
        // On a clean low-RTT link one tuned stream is already near line
        // rate; extra streams gain little (< 30%).
        let one = advice.sweep[0].1;
        let three = advice.sweep[2].1;
        assert!(three < one * 1.3, "1 stream {one:.1} vs 3 streams {three:.1}");
    }
}
