//! Byte-range bookkeeping for restartable transfers.
//!
//! GridFTP's reliability features (restart markers, partial file transfer,
//! extended retrieve) all reduce to tracking which byte ranges of a file
//! have arrived. [`ByteRanges`] is that set, with the merge/complement
//! operations the protocol needs.

use std::fmt;

/// A set of disjoint, sorted, non-adjacent half-open ranges `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ByteRanges {
    runs: Vec<(u64, u64)>,
}

impl ByteRanges {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with neighbours.
    pub fn insert(&mut self, start: u64, end: u64) {
        assert!(start <= end, "inverted range {start}..{end}");
        if start == end {
            return;
        }
        // Find insertion window: all runs overlapping or adjacent to [start, end).
        let mut new_start = start;
        let mut new_end = end;
        let mut i = 0;
        while i < self.runs.len() && self.runs[i].1 < start {
            i += 1;
        }
        let mut j = i;
        while j < self.runs.len() && self.runs[j].0 <= end {
            new_start = new_start.min(self.runs[j].0);
            new_end = new_end.max(self.runs[j].1);
            j += 1;
        }
        self.runs.splice(i..j, std::iter::once((new_start, new_end)));
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.runs.iter().map(|(s, e)| e - s).sum()
    }

    /// True when `[0, total)` is fully covered.
    pub fn is_complete(&self, total: u64) -> bool {
        total == 0 || (self.runs.len() == 1 && self.runs[0] == (0, total))
    }

    pub fn contains(&self, offset: u64) -> bool {
        self.runs.iter().any(|&(s, e)| s <= offset && offset < e)
    }

    /// The gaps in `[0, total)` — what a restarted transfer must re-fetch.
    pub fn missing(&self, total: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for &(s, e) in &self.runs {
            if s >= total {
                break;
            }
            if cursor < s {
                out.push((cursor, s.min(total)));
            }
            cursor = cursor.max(e);
        }
        if cursor < total {
            out.push((cursor, total));
        }
        out
    }

    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// Serialize as a GridFTP restart marker: `start-end,start-end,...`.
    pub fn to_marker(&self) -> String {
        self.runs.iter().map(|(s, e)| format!("{s}-{e}")).collect::<Vec<_>>().join(",")
    }

    /// Parse a restart marker produced by [`ByteRanges::to_marker`].
    pub fn from_marker(s: &str) -> Option<ByteRanges> {
        let mut r = ByteRanges::new();
        if s.trim().is_empty() {
            return Some(r);
        }
        for part in s.split(',') {
            let (a, b) = part.trim().split_once('-')?;
            let (a, b) = (a.parse().ok()?, b.parse().ok()?);
            if a > b {
                return None;
            }
            r.insert(a, b);
        }
        Some(r)
    }
}

impl fmt::Display for ByteRanges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_marker())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_merge() {
        let mut r = ByteRanges::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.runs(), &[(10, 20), (30, 40)]);
        r.insert(20, 30); // bridges the gap
        assert_eq!(r.runs(), &[(10, 40)]);
        assert_eq!(r.covered(), 30);
    }

    #[test]
    fn overlapping_inserts() {
        let mut r = ByteRanges::new();
        r.insert(0, 100);
        r.insert(50, 150);
        r.insert(25, 75); // fully inside
        assert_eq!(r.runs(), &[(0, 150)]);
    }

    #[test]
    fn adjacent_runs_merge() {
        let mut r = ByteRanges::new();
        r.insert(0, 10);
        r.insert(10, 20);
        assert_eq!(r.runs(), &[(0, 20)]);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut r = ByteRanges::new();
        r.insert(5, 5);
        assert!(r.runs().is_empty());
        assert_eq!(r.covered(), 0);
    }

    #[test]
    fn completeness() {
        let mut r = ByteRanges::new();
        assert!(r.is_complete(0));
        assert!(!r.is_complete(10));
        r.insert(0, 10);
        assert!(r.is_complete(10));
        assert!(!r.is_complete(11));
    }

    #[test]
    fn missing_gaps() {
        let mut r = ByteRanges::new();
        r.insert(10, 20);
        r.insert(40, 50);
        assert_eq!(r.missing(60), vec![(0, 10), (20, 40), (50, 60)]);
        assert_eq!(r.missing(15), vec![(0, 10)]);
        let full: ByteRanges = {
            let mut x = ByteRanges::new();
            x.insert(0, 60);
            x
        };
        assert!(full.missing(60).is_empty());
    }

    #[test]
    fn contains_point() {
        let mut r = ByteRanges::new();
        r.insert(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
    }

    #[test]
    fn marker_roundtrip() {
        let mut r = ByteRanges::new();
        r.insert(0, 1000);
        r.insert(5000, 9000);
        let m = r.to_marker();
        assert_eq!(m, "0-1000,5000-9000");
        assert_eq!(ByteRanges::from_marker(&m).unwrap(), r);
        assert_eq!(ByteRanges::from_marker("").unwrap(), ByteRanges::new());
        assert!(ByteRanges::from_marker("9-3").is_none());
        assert!(ByteRanges::from_marker("abc").is_none());
    }

    #[test]
    fn out_of_order_inserts_normalize() {
        let mut a = ByteRanges::new();
        a.insert(40, 50);
        a.insert(0, 10);
        a.insert(20, 30);
        let mut b = ByteRanges::new();
        b.insert(0, 10);
        b.insert(20, 30);
        b.insert(40, 50);
        assert_eq!(a, b);
    }
}
