//! Extended block mode (MODE E) framing.
//!
//! Parallel and striped transfers need out-of-order, multi-channel data
//! delivery, which stream mode cannot express. Extended block mode frames
//! every chunk with `(flags, length, offset)` so any data channel can carry
//! any part of the file, and EOD/EOF bookkeeping tells the receiver when
//! all channels are drained.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::ranges::ByteRanges;

/// Header flags (subset of the GridFTP extended-block flag byte).
pub mod flags {
    /// End of data on this channel.
    pub const EOD: u8 = 0x08;
    /// End of file: the sender also announces the channel count.
    pub const EOF: u8 = 0x40;
    /// Block is a restart-marker hint rather than file data.
    pub const RESTART: u8 = 0x20;
}

/// One extended-mode block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    pub flags: u8,
    pub offset: u64,
    pub payload: Bytes,
}

impl Block {
    pub fn data(offset: u64, payload: Bytes) -> Self {
        Block { flags: 0, offset, payload }
    }

    /// End-of-data sentinel for one channel.
    pub fn eod() -> Self {
        Block { flags: flags::EOD, offset: 0, payload: Bytes::new() }
    }

    pub fn is_eod(&self) -> bool {
        self.flags & flags::EOD != 0
    }

    /// 17-byte header + payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(17 + self.payload.len());
        buf.put_u8(self.flags);
        buf.put_u64(self.payload.len() as u64);
        buf.put_u64(self.offset);
        buf.put_slice(&self.payload);
        buf.freeze()
    }
}

/// Framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    Truncated,
    /// Declared length exceeds the sanity cap.
    OversizedBlock(u64),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated block"),
            FrameError::OversizedBlock(n) => write!(f, "block of {n} bytes exceeds cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Largest block a conforming peer may send (sanity cap for the decoder).
pub const MAX_BLOCK: u64 = 16 * 1024 * 1024;

/// Incremental decoder: feed bytes, pull complete blocks.
#[derive(Debug, Default)]
pub struct BlockDecoder {
    buf: BytesMut,
}

impl BlockDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to decode the next complete block.
    pub fn next_block(&mut self) -> Result<Option<Block>, FrameError> {
        if self.buf.len() < 17 {
            return Ok(None);
        }
        let mut peek = &self.buf[..];
        let flags = peek.get_u8();
        let len = peek.get_u64();
        let offset = peek.get_u64();
        if len > MAX_BLOCK {
            return Err(FrameError::OversizedBlock(len));
        }
        if (self.buf.len() as u64) < 17 + len {
            return Ok(None);
        }
        self.buf.advance(17);
        let payload = self.buf.split_to(len as usize).freeze();
        Ok(Some(Block { flags, offset, payload }))
    }

    /// Leftover undecoded bytes (should be 0 at stream end).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Split a file into blocks and deal them to `channels` data channels
/// round-robin — the sender side of a parallel transfer. Each channel's
/// list ends with an EOD block.
pub fn partition(data: &Bytes, block_size: usize, channels: usize) -> Vec<Vec<Block>> {
    assert!(channels > 0, "at least one data channel");
    assert!(block_size > 0, "block size must be positive");
    let mut out: Vec<Vec<Block>> = vec![Vec::new(); channels];
    let mut offset = 0usize;
    let mut ch = 0usize;
    while offset < data.len() {
        let end = (offset + block_size).min(data.len());
        out[ch].push(Block::data(offset as u64, data.slice(offset..end)));
        offset = end;
        ch = (ch + 1) % channels;
    }
    for list in &mut out {
        list.push(Block::eod());
    }
    out
}

/// The receiver side: reassemble blocks (possibly out of order, from many
/// channels) into a file image, tracking coverage for restart markers.
#[derive(Debug)]
pub struct Reassembler {
    size: u64,
    data: Vec<u8>,
    received: ByteRanges,
    eods: usize,
    /// Channels expected to signal EOD.
    channels: usize,
}

/// Reassembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyError {
    /// Block extends past the announced file size.
    OutOfBounds { offset: u64, len: u64, size: u64 },
    /// More EOD markers than channels.
    ExtraEod,
}

impl std::fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassemblyError::OutOfBounds { offset, len, size } => {
                write!(f, "block {offset}+{len} exceeds file size {size}")
            }
            ReassemblyError::ExtraEod => write!(f, "unexpected extra EOD"),
        }
    }
}

impl std::error::Error for ReassemblyError {}

impl Reassembler {
    pub fn new(size: u64, channels: usize) -> Self {
        Reassembler {
            size,
            data: vec![0; size as usize],
            received: ByteRanges::new(),
            eods: 0,
            channels,
        }
    }

    pub fn accept(&mut self, block: &Block) -> Result<(), ReassemblyError> {
        if block.is_eod() {
            if self.eods >= self.channels {
                return Err(ReassemblyError::ExtraEod);
            }
            self.eods += 1;
            return Ok(());
        }
        let len = block.payload.len() as u64;
        if block.offset + len > self.size {
            return Err(ReassemblyError::OutOfBounds {
                offset: block.offset,
                len,
                size: self.size,
            });
        }
        self.data[block.offset as usize..(block.offset + len) as usize]
            .copy_from_slice(&block.payload);
        self.received.insert(block.offset, block.offset + len);
        Ok(())
    }

    /// All channels EODed and every byte covered.
    pub fn is_complete(&self) -> bool {
        self.eods == self.channels && self.received.is_complete(self.size)
    }

    /// All channels EODed but bytes are missing — the transfer must restart.
    pub fn is_stalled(&self) -> bool {
        self.eods == self.channels && !self.received.is_complete(self.size)
    }

    pub fn received(&self) -> &ByteRanges {
        &self.received
    }

    /// Extract the file; panics unless complete.
    pub fn into_bytes(self) -> Bytes {
        assert!(
            self.received.is_complete(self.size),
            "reassembly incomplete: {} of {} bytes",
            self.received.covered(),
            self.size
        );
        Bytes::from(self.data)
    }

    /// Extract whatever arrived (for resume-after-failure testing).
    pub fn into_partial(self) -> (Bytes, ByteRanges) {
        (Bytes::from(self.data), self.received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn block_encode_decode_roundtrip() {
        let b = Block::data(12345, sample(1000));
        let mut d = BlockDecoder::new();
        d.feed(&b.encode());
        let back = d.next_block().unwrap().unwrap();
        assert_eq!(back, b);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn decoder_handles_fragmented_input() {
        let blocks = [Block::data(0, sample(100)), Block::data(100, sample(50)), Block::eod()];
        let mut wire = Vec::new();
        for b in &blocks {
            wire.extend_from_slice(&b.encode());
        }
        let mut d = BlockDecoder::new();
        let mut out = Vec::new();
        for chunk in wire.chunks(7) {
            d.feed(chunk);
            while let Some(b) = d.next_block().unwrap() {
                out.push(b);
            }
        }
        assert_eq!(out.len(), 3);
        assert!(out[2].is_eod());
    }

    #[test]
    fn decoder_rejects_oversized() {
        let mut d = BlockDecoder::new();
        let mut evil = BytesMut::new();
        evil.put_u8(0);
        evil.put_u64(MAX_BLOCK + 1);
        evil.put_u64(0);
        d.feed(&evil);
        assert!(matches!(d.next_block(), Err(FrameError::OversizedBlock(_))));
    }

    #[test]
    fn partition_round_robin_covers_file() {
        let data = sample(10_000);
        let parts = partition(&data, 1000, 3);
        assert_eq!(parts.len(), 3);
        // Channel 0 gets blocks 0, 3, 6, 9 → offsets 0, 3000, 6000, 9000.
        let offs: Vec<u64> = parts[0].iter().filter(|b| !b.is_eod()).map(|b| b.offset).collect();
        assert_eq!(offs, vec![0, 3000, 6000, 9000]);
        // Every channel ends with EOD.
        for p in &parts {
            assert!(p.last().unwrap().is_eod());
        }
        // Total payload = file size.
        let total: usize = parts.iter().flatten().map(|b| b.payload.len()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn reassembly_out_of_order() {
        let data = sample(5000);
        let parts = partition(&data, 700, 4);
        let mut r = Reassembler::new(5000, 4);
        // Deliver channels in reverse, blocks reversed within channels.
        for p in parts.iter().rev() {
            for b in p.iter().rev() {
                r.accept(b).unwrap();
            }
        }
        assert!(r.is_complete());
        assert_eq!(r.into_bytes(), data);
    }

    #[test]
    fn stalled_detection_on_missing_block() {
        let data = sample(3000);
        let parts = partition(&data, 500, 2);
        let mut r = Reassembler::new(3000, 2);
        for (i, p) in parts.iter().enumerate() {
            for (j, b) in p.iter().enumerate() {
                if i == 1 && j == 1 && !b.is_eod() {
                    continue; // drop one data block
                }
                r.accept(b).unwrap();
            }
        }
        assert!(!r.is_complete());
        assert!(r.is_stalled());
        let (_, ranges) = r.into_partial();
        assert_eq!(ranges.missing(3000).len(), 1);
    }

    #[test]
    fn out_of_bounds_block_rejected() {
        let mut r = Reassembler::new(100, 1);
        let err = r.accept(&Block::data(90, sample(20))).unwrap_err();
        assert!(matches!(err, ReassemblyError::OutOfBounds { .. }));
    }

    #[test]
    fn extra_eod_rejected() {
        let mut r = Reassembler::new(0, 1);
        r.accept(&Block::eod()).unwrap();
        assert!(r.is_complete());
        assert_eq!(r.accept(&Block::eod()), Err(ReassemblyError::ExtraEod));
    }

    #[test]
    fn empty_file_completes_with_eods_only() {
        let data = sample(0);
        let parts = partition(&data, 100, 2);
        let mut r = Reassembler::new(0, 2);
        for p in &parts {
            for b in p {
                r.accept(b).unwrap();
            }
        }
        assert!(r.is_complete());
        assert_eq!(r.into_bytes().len(), 0);
    }
}
