//! Control-channel protocol: FTP commands plus the GridFTP extensions.
//!
//! The subset implemented is what GDMP's Data Mover exercises: GSI
//! authentication (`AUTH`/`ADAT`), binary type, extended block mode,
//! socket-buffer negotiation (`SBUF`), parallelism (`OPTS RETR`), striped
//! passive mode (`SPAS`), whole and partial retrieval (`RETR`/`ERET`),
//! store (`STOR`), checksums (`CKSM`), size query, delete, and quit.

use std::fmt;

/// A parsed control-channel command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `AUTH GSSAPI`
    AuthGssapi,
    /// `ADAT <base16 token>`
    Adat(String),
    /// `TYPE I` — binary transfers only.
    TypeImage,
    /// `MODE E` | `MODE S`
    Mode(char),
    /// `SBUF <bytes>` — set TCP buffer for subsequent data channels.
    Sbuf(u64),
    /// `OPTS RETR Parallelism=n;`
    OptsParallelism(u32),
    /// `SPAS <n>` — striped/parallel passive: ask for n data ports.
    Spas(u32),
    /// `SPOR <host:port,host:port,...>` — striped active: the server will
    /// *connect out* to these data endpoints for the next transfer
    /// (third-party control: the endpoints belong to another server).
    Spor(Vec<std::net::SocketAddr>),
    /// `SIZE <path>`
    Size(String),
    /// `CKSM CRC32 <offset> <length|-1> <path>`
    Cksm { offset: u64, length: i64, path: String },
    /// `RETR <path>`
    Retr(String),
    /// `ERET P <offset> <length> <path>` — partial retrieve.
    EretPartial { offset: u64, length: u64, path: String },
    /// `STOR <path> <size>` (size extension lets the receiver preallocate).
    Stor { path: String, size: u64 },
    /// `DELE <path>`
    Dele(String),
    /// `NOOP`
    Noop,
    /// `QUIT`
    Quit,
}

/// Command parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    Empty,
    Unknown(String),
    BadArgs(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty command line"),
            ParseError::Unknown(c) => write!(f, "unknown command {c:?}"),
            ParseError::BadArgs(what) => write!(f, "bad arguments: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Command {
    /// Parse one CRLF-stripped command line.
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let line = line.trim();
        if line.is_empty() {
            return Err(ParseError::Empty);
        }
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "AUTH" if rest.eq_ignore_ascii_case("GSSAPI") => Ok(Command::AuthGssapi),
            "AUTH" => Err(ParseError::BadArgs("only GSSAPI supported")),
            "ADAT" if !rest.is_empty() => Ok(Command::Adat(rest.to_string())),
            "ADAT" => Err(ParseError::BadArgs("missing token")),
            "TYPE" if rest.eq_ignore_ascii_case("I") => Ok(Command::TypeImage),
            "TYPE" => Err(ParseError::BadArgs("only TYPE I supported")),
            "MODE" => match rest.to_ascii_uppercase().as_str() {
                "E" => Ok(Command::Mode('E')),
                "S" => Ok(Command::Mode('S')),
                _ => Err(ParseError::BadArgs("mode must be E or S")),
            },
            "SBUF" => rest
                .parse()
                .map(Command::Sbuf)
                .map_err(|_| ParseError::BadArgs("SBUF wants a byte count")),
            "OPTS" => {
                // OPTS RETR Parallelism=n;
                let rest_l = rest.to_ascii_lowercase();
                let n = rest_l
                    .strip_prefix("retr parallelism=")
                    .and_then(|s| s.trim_end_matches(';').parse().ok())
                    .ok_or(ParseError::BadArgs("OPTS RETR Parallelism=n;"))?;
                Ok(Command::OptsParallelism(n))
            }
            "SPAS" => {
                let n = if rest.is_empty() {
                    1
                } else {
                    rest.parse().map_err(|_| ParseError::BadArgs("SPAS wants a count"))?
                };
                if n == 0 {
                    return Err(ParseError::BadArgs("SPAS wants a positive count"));
                }
                Ok(Command::Spas(n))
            }
            "SPOR" => {
                let addrs: Result<Vec<std::net::SocketAddr>, _> =
                    rest.split(',').map(|a| a.trim().parse()).collect();
                match addrs {
                    Ok(v) if !v.is_empty() => Ok(Command::Spor(v)),
                    _ => Err(ParseError::BadArgs("SPOR wants host:port[,host:port...]")),
                }
            }
            "SIZE" if !rest.is_empty() => Ok(Command::Size(rest.to_string())),
            "CKSM" => {
                let mut it = rest.split_whitespace();
                let algo = it.next().ok_or(ParseError::BadArgs("CKSM algo"))?;
                if !algo.eq_ignore_ascii_case("CRC32") {
                    return Err(ParseError::BadArgs("only CRC32 supported"));
                }
                let offset =
                    it.next().and_then(|s| s.parse().ok()).ok_or(ParseError::BadArgs("offset"))?;
                let length =
                    it.next().and_then(|s| s.parse().ok()).ok_or(ParseError::BadArgs("length"))?;
                let path = it.collect::<Vec<_>>().join(" ");
                if path.is_empty() {
                    return Err(ParseError::BadArgs("path"));
                }
                Ok(Command::Cksm { offset, length, path })
            }
            "RETR" if !rest.is_empty() => Ok(Command::Retr(rest.to_string())),
            "ERET" => {
                let mut it = rest.split_whitespace();
                if it.next() != Some("P") {
                    return Err(ParseError::BadArgs("only ERET P supported"));
                }
                let offset =
                    it.next().and_then(|s| s.parse().ok()).ok_or(ParseError::BadArgs("offset"))?;
                let length =
                    it.next().and_then(|s| s.parse().ok()).ok_or(ParseError::BadArgs("length"))?;
                let path = it.collect::<Vec<_>>().join(" ");
                if path.is_empty() {
                    return Err(ParseError::BadArgs("path"));
                }
                Ok(Command::EretPartial { offset, length, path })
            }
            "STOR" => {
                let (path, size) =
                    rest.rsplit_once(' ').ok_or(ParseError::BadArgs("STOR <path> <size>"))?;
                let size = size.parse().map_err(|_| ParseError::BadArgs("size"))?;
                if path.is_empty() {
                    return Err(ParseError::BadArgs("path"));
                }
                Ok(Command::Stor { path: path.to_string(), size })
            }
            "DELE" if !rest.is_empty() => Ok(Command::Dele(rest.to_string())),
            "NOOP" => Ok(Command::Noop),
            "QUIT" => Ok(Command::Quit),
            other => Err(ParseError::Unknown(other.to_string())),
        }
    }

    /// Wire form (no CRLF).
    pub fn format(&self) -> String {
        match self {
            Command::AuthGssapi => "AUTH GSSAPI".into(),
            Command::Adat(tok) => format!("ADAT {tok}"),
            Command::TypeImage => "TYPE I".into(),
            Command::Mode(m) => format!("MODE {m}"),
            Command::Sbuf(n) => format!("SBUF {n}"),
            Command::OptsParallelism(n) => format!("OPTS RETR Parallelism={n};"),
            Command::Spas(n) => format!("SPAS {n}"),
            Command::Spor(addrs) => format!(
                "SPOR {}",
                addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
            ),
            Command::Size(p) => format!("SIZE {p}"),
            Command::Cksm { offset, length, path } => {
                format!("CKSM CRC32 {offset} {length} {path}")
            }
            Command::Retr(p) => format!("RETR {p}"),
            Command::EretPartial { offset, length, path } => {
                format!("ERET P {offset} {length} {path}")
            }
            Command::Stor { path, size } => format!("STOR {path} {size}"),
            Command::Dele(p) => format!("DELE {p}"),
            Command::Noop => "NOOP".into(),
            Command::Quit => "QUIT".into(),
        }
    }
}

/// A server reply: 3-digit code + text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    pub code: u16,
    pub text: String,
}

impl Reply {
    pub fn new(code: u16, text: impl Into<String>) -> Self {
        Reply { code, text: text.into() }
    }

    pub fn is_positive(&self) -> bool {
        (200..400).contains(&self.code) || (100..200).contains(&self.code)
    }

    pub fn format(&self) -> String {
        format!("{} {}", self.code, self.text)
    }

    pub fn parse(line: &str) -> Option<Reply> {
        let line = line.trim_end();
        let (code, text) = line.split_at(line.len().min(3));
        let code: u16 = code.parse().ok()?;
        Some(Reply { code, text: text.trim_start().to_string() })
    }
}

/// Well-known reply constructors.
pub mod replies {
    use super::Reply;

    pub fn ready(nonce: u64) -> Reply {
        Reply::new(220, format!("GDMP GridFTP server ready; GSI nonce={nonce:016x}"))
    }
    pub fn adat_continue() -> Reply {
        Reply::new(334, "ADAT must follow")
    }
    pub fn auth_ok(token: &str) -> Reply {
        Reply::new(235, format!("ADAT={token}"))
    }
    pub fn ok(what: &str) -> Reply {
        Reply::new(200, what.to_string())
    }
    pub fn opening() -> Reply {
        Reply::new(150, "Opening extended-mode data connection")
    }
    pub fn complete() -> Reply {
        Reply::new(226, "Transfer complete")
    }
    pub fn size(n: u64) -> Reply {
        Reply::new(213, n.to_string())
    }
    pub fn cksm(crc: u32) -> Reply {
        Reply::new(213, format!("{crc:08x}"))
    }
    pub fn spas(ports: &[u16]) -> Reply {
        let list: Vec<String> = ports.iter().map(u16::to_string).collect();
        Reply::new(229, format!("Entering Striped Passive Mode ({})", list.join(",")))
    }
    pub fn deleted() -> Reply {
        Reply::new(250, "File deleted")
    }
    pub fn bye() -> Reply {
        Reply::new(221, "Goodbye")
    }
    pub fn not_found(path: &str) -> Reply {
        Reply::new(550, format!("{path}: no such file"))
    }
    pub fn denied(why: &str) -> Reply {
        Reply::new(535, format!("authentication failed: {why}"))
    }
    pub fn bad_sequence(why: &str) -> Reply {
        Reply::new(503, format!("bad sequence: {why}"))
    }
    pub fn syntax(why: &str) -> Reply {
        Reply::new(500, format!("syntax error: {why}"))
    }

    /// Extract the port list from a 229 SPAS reply.
    pub fn parse_spas_ports(r: &Reply) -> Option<Vec<u16>> {
        let open = r.text.find('(')?;
        let close = r.text.rfind(')')?;
        r.text[open + 1..close].split(',').map(|p| p.trim().parse().ok()).collect()
    }

    /// Extract the nonce from the 220 greeting.
    pub fn parse_nonce(r: &Reply) -> Option<u64> {
        let idx = r.text.find("nonce=")?;
        u64::from_str_radix(&r.text[idx + 6..idx + 22], 16).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_format_roundtrip() {
        let cmds = [
            Command::AuthGssapi,
            Command::Adat("deadbeef".into()),
            Command::TypeImage,
            Command::Mode('E'),
            Command::Sbuf(1_048_576),
            Command::OptsParallelism(8),
            Command::Spas(4),
            Command::Spor(vec![
                "127.0.0.1:4001".parse().unwrap(),
                "127.0.0.1:4002".parse().unwrap(),
            ]),
            Command::Size("x.db".into()),
            Command::Cksm { offset: 0, length: -1, path: "x.db".into() },
            Command::Retr("data/run 1.db".into()),
            Command::EretPartial { offset: 100, length: 500, path: "x.db".into() },
            Command::Stor { path: "y.db".into(), size: 12345 },
            Command::Dele("y.db".into()),
            Command::Noop,
            Command::Quit,
        ];
        for c in cmds {
            assert_eq!(Command::parse(&c.format()).unwrap(), c, "roundtrip {c:?}");
        }
    }

    #[test]
    fn parse_is_case_insensitive_on_verbs() {
        assert_eq!(Command::parse("quit").unwrap(), Command::Quit);
        assert_eq!(Command::parse("mode e").unwrap(), Command::Mode('E'));
        assert_eq!(
            Command::parse("opts RETR parallelism=3;").unwrap(),
            Command::OptsParallelism(3)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(Command::parse(""), Err(ParseError::Empty)));
        assert!(matches!(Command::parse("FROB x"), Err(ParseError::Unknown(_))));
        assert!(matches!(Command::parse("SBUF lots"), Err(ParseError::BadArgs(_))));
        assert!(matches!(Command::parse("MODE X"), Err(ParseError::BadArgs(_))));
        assert!(matches!(Command::parse("SPAS 0"), Err(ParseError::BadArgs(_))));
        assert!(matches!(Command::parse("SPOR"), Err(ParseError::BadArgs(_))));
        assert!(matches!(Command::parse("SPOR notanaddr"), Err(ParseError::BadArgs(_))));
        assert!(matches!(Command::parse("ERET X 1 2 f"), Err(ParseError::BadArgs(_))));
        assert!(matches!(Command::parse("AUTH KERBEROS"), Err(ParseError::BadArgs(_))));
    }

    #[test]
    fn reply_roundtrip_and_polarity() {
        let r = replies::size(42);
        let back = Reply::parse(&r.format()).unwrap();
        assert_eq!(back, r);
        assert!(back.is_positive());
        assert!(!replies::not_found("x").is_positive());
        assert!(replies::opening().is_positive());
    }

    #[test]
    fn spas_port_extraction() {
        let r = replies::spas(&[40001, 40002, 40003]);
        assert_eq!(replies::parse_spas_ports(&r).unwrap(), vec![40001, 40002, 40003]);
        assert!(replies::parse_spas_ports(&Reply::new(229, "nope")).is_none());
    }

    #[test]
    fn nonce_extraction() {
        let r = replies::ready(0xdead_beef_1234_5678);
        assert_eq!(replies::parse_nonce(&r), Some(0xdead_beef_1234_5678));
    }

    #[test]
    fn stor_with_spaces_in_path() {
        // rsplit_once: the last token is the size, everything before is path.
        let c = Command::parse("STOR my file.db 999").unwrap();
        assert_eq!(c, Command::Stor { path: "my file.db".into(), size: 999 });
    }
}
