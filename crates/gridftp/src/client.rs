//! GridFTP client over real TCP: the `globus_url_copy` / `extended_get`
//! side of the protocol.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use bytes::Bytes;
use gdmp_gsi::context::{make_token, verify_token};
use gdmp_gsi::proxy::CredentialChain;

use crate::block::{partition, Block, BlockDecoder, Reassembler};
use crate::crc::crc32;
use crate::protocol::{replies, Command, Reply};
use crate::ranges::ByteRanges;
use crate::server::{hex_decode, hex_encode, AdatPayload};

/// Client-side configuration.
#[derive(Clone)]
pub struct ClientConfig {
    pub credential: CredentialChain,
    pub ca_public: u64,
    pub now: u64,
    /// Number of parallel data channels.
    pub parallelism: u32,
    /// Socket buffer to negotiate with `SBUF`.
    pub buffer: u64,
    /// Block size when storing.
    pub block_size: usize,
    /// Nonce for the handshake (callers supply; no wall clock here).
    pub nonce: u64,
}

/// Client errors.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// Server answered with a negative reply.
    Refused(Reply),
    Auth(String),
    /// Transfer ended with bytes missing; the ranges received so far are
    /// included so the caller can restart.
    Stalled {
        received: ByteRanges,
        partial: Bytes,
    },
    /// CRC mismatch after transfer.
    Corrupt {
        expected: u32,
        actual: u32,
    },
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Refused(r) => write!(f, "server refused: {} {}", r.code, r.text),
            ClientError::Auth(s) => write!(f, "authentication: {s}"),
            ClientError::Stalled { received, .. } => {
                write!(f, "transfer stalled; received {}", received.to_marker())
            }
            ClientError::Corrupt { expected, actual } => {
                write!(f, "CRC mismatch: expected {expected:08x}, got {actual:08x}")
            }
            ClientError::Protocol(s) => write!(f, "protocol violation: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Statistics from one retrieval.
#[derive(Debug, Clone, Copy)]
pub struct GetReport {
    pub bytes: u64,
    pub channels: u32,
    /// CRC verified against the server's CKSM answer.
    pub crc32: u32,
}

/// An authenticated control-channel session.
pub struct GridFtpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    cfg: ClientConfig,
    /// Authenticated server identity (DN string).
    pub server_identity: String,
}

impl GridFtpClient {
    /// Connect and authenticate.
    pub fn connect(addr: SocketAddr, cfg: ClientConfig) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        let mut client = GridFtpClient {
            reader: BufReader::new(stream),
            writer,
            cfg,
            server_identity: String::new(),
        };
        let greeting = client.read_reply()?;
        if greeting.code != 220 {
            return Err(ClientError::Refused(greeting));
        }
        let server_nonce = replies::parse_nonce(&greeting)
            .ok_or_else(|| ClientError::Protocol("greeting lacks GSI nonce".into()))?;
        client.authenticate(server_nonce)?;
        client.command_expect(&Command::TypeImage, 200)?;
        client.command_expect(&Command::Mode('E'), 200)?;
        let buffer = client.cfg.buffer;
        client.command_expect(&Command::Sbuf(buffer), 200)?;
        let par = client.cfg.parallelism;
        client.command_expect(&Command::OptsParallelism(par), 200)?;
        Ok(client)
    }

    fn authenticate(&mut self, server_nonce: u64) -> Result<(), ClientError> {
        self.command_expect(&Command::AuthGssapi, 334)?;
        let payload = AdatPayload {
            token: make_token(&self.cfg.credential, server_nonce),
            nonce: self.cfg.nonce,
        };
        let hex = hex_encode(&serde_json::to_vec(&payload).expect("token serializes"));
        let reply = self.command(&Command::Adat(hex))?;
        if reply.code != 235 {
            return Err(ClientError::Auth(reply.text));
        }
        let token_hex = reply
            .text
            .strip_prefix("ADAT=")
            .ok_or_else(|| ClientError::Protocol("235 without ADAT=".into()))?;
        let raw = hex_decode(token_hex)
            .ok_or_else(|| ClientError::Protocol("undecodable server token".into()))?;
        let server: AdatPayload = serde_json::from_slice(&raw)
            .map_err(|_| ClientError::Protocol("malformed server token".into()))?;
        let identity =
            verify_token(&server.token, self.cfg.nonce, self.cfg.ca_public, self.cfg.now)
                .map_err(|e| ClientError::Auth(format!("server failed mutual auth: {e}")))?;
        self.server_identity = identity.to_string();
        Ok(())
    }

    // ---- queries -------------------------------------------------------

    pub fn size(&mut self, path: &str) -> Result<u64, ClientError> {
        let r = self.command_expect(&Command::Size(path.into()), 213)?;
        r.text.trim().parse().map_err(|_| ClientError::Protocol("bad SIZE reply".into()))
    }

    /// Remote CRC-32 over a byte range (`length = -1` → to end of file).
    pub fn cksm(&mut self, path: &str, offset: u64, length: i64) -> Result<u32, ClientError> {
        let r = self.command_expect(&Command::Cksm { offset, length, path: path.into() }, 213)?;
        u32::from_str_radix(r.text.trim(), 16)
            .map_err(|_| ClientError::Protocol("bad CKSM reply".into()))
    }

    pub fn delete(&mut self, path: &str) -> Result<(), ClientError> {
        self.command_expect(&Command::Dele(path.into()), 250).map(|_| ())
    }

    pub fn quit(mut self) -> Result<(), ClientError> {
        self.command_expect(&Command::Quit, 221).map(|_| ())
    }

    // ---- transfers -------------------------------------------------------

    /// Retrieve a whole file over `parallelism` channels, verifying its CRC
    /// against the server's.
    pub fn get(&mut self, path: &str) -> Result<(Bytes, GetReport), ClientError> {
        let size = self.size(path)?;
        let expected_crc = self.cksm(path, 0, -1)?;
        let channels = self.cfg.parallelism.max(1);
        let ports = self.spas(channels)?;
        let opening = self.command(&Command::Retr(path.into()))?;
        if opening.code != 150 {
            return Err(ClientError::Refused(opening));
        }
        let blocks = self.collect_data(&ports)?;
        self.expect_completion()?;
        let mut reasm = Reassembler::new(size, ports.len());
        for b in &blocks {
            reasm.accept(b).map_err(|e| ClientError::Protocol(e.to_string()))?;
        }
        if !reasm.is_complete() {
            let (partial, received) = reasm.into_partial();
            return Err(ClientError::Stalled { received, partial });
        }
        let data = reasm.into_bytes();
        let actual = crc32(&data);
        if actual != expected_crc {
            return Err(ClientError::Corrupt { expected: expected_crc, actual });
        }
        Ok((data, GetReport { bytes: size, channels: ports.len() as u32, crc32: actual }))
    }

    /// Retrieve one byte range (`ERET P`): the building block for partial
    /// transfer and restart.
    pub fn get_partial(
        &mut self,
        path: &str,
        offset: u64,
        length: u64,
    ) -> Result<Bytes, ClientError> {
        let channels = self.cfg.parallelism.max(1);
        let ports = self.spas(channels)?;
        let opening = self.command(&Command::EretPartial { offset, length, path: path.into() })?;
        if opening.code != 150 {
            return Err(ClientError::Refused(opening));
        }
        let blocks = self.collect_data(&ports)?;
        self.expect_completion()?;
        // Blocks carry absolute offsets; rebase into the range buffer.
        let mut buf = vec![0u8; length as usize];
        let mut got = ByteRanges::new();
        for b in blocks.iter().filter(|b| !b.is_eod()) {
            let rel = b
                .offset
                .checked_sub(offset)
                .ok_or_else(|| ClientError::Protocol("block before range".into()))?;
            let end = rel as usize + b.payload.len();
            if end > buf.len() {
                return Err(ClientError::Protocol("block past range".into()));
            }
            buf[rel as usize..end].copy_from_slice(&b.payload);
            got.insert(rel, end as u64);
        }
        if !got.is_complete(length) {
            return Err(ClientError::Stalled { received: got, partial: Bytes::from(buf) });
        }
        Ok(Bytes::from(buf))
    }

    /// Resume: fill the missing ranges of a partially received file, then
    /// verify the complete CRC. `partial` must be a full-size buffer with
    /// `received` describing its valid ranges (as returned by a
    /// [`ClientError::Stalled`]).
    pub fn resume(
        &mut self,
        path: &str,
        partial: Bytes,
        received: &ByteRanges,
    ) -> Result<Bytes, ClientError> {
        let size = self.size(path)?;
        let expected_crc = self.cksm(path, 0, -1)?;
        let mut buf = partial.to_vec();
        buf.resize(size as usize, 0);
        for (start, end) in received.missing(size) {
            let chunk = self.get_partial(path, start, end - start)?;
            buf[start as usize..end as usize].copy_from_slice(&chunk);
        }
        let actual = crc32(&buf);
        if actual != expected_crc {
            return Err(ClientError::Corrupt { expected: expected_crc, actual });
        }
        Ok(Bytes::from(buf))
    }

    /// Store a file over `parallelism` channels.
    pub fn put(&mut self, path: &str, data: Bytes) -> Result<(), ClientError> {
        let channels = self.cfg.parallelism.max(1);
        let ports = self.spas(channels)?;
        let opening =
            self.command(&Command::Stor { path: path.into(), size: data.len() as u64 })?;
        if opening.code != 150 {
            return Err(ClientError::Refused(opening));
        }
        let parts = partition(&data, self.cfg.block_size, ports.len());
        let mut threads = Vec::new();
        for (port, blocks) in ports.iter().zip(parts) {
            let addr = SocketAddr::new(self.writer.peer_addr()?.ip(), *port);
            threads.push(std::thread::spawn(move || -> std::io::Result<()> {
                let mut conn = TcpStream::connect(addr)?;
                for b in &blocks {
                    conn.write_all(&b.encode())?;
                }
                conn.flush()?;
                Ok(())
            }));
        }
        let mut failed = false;
        for t in threads {
            failed |= t.join().map(|r| r.is_err()).unwrap_or(true);
        }
        if failed {
            return Err(ClientError::Protocol("data channel write failed".into()));
        }
        self.expect_completion()
    }

    // ---- plumbing -------------------------------------------------------

    fn spas(&mut self, n: u32) -> Result<Vec<u16>, ClientError> {
        let r = self.command_expect(&Command::Spas(n), 229)?;
        replies::parse_spas_ports(&r)
            .ok_or_else(|| ClientError::Protocol("unparseable SPAS reply".into()))
    }

    /// Connect to every data port and drain blocks until each channel EODs
    /// or closes.
    fn collect_data(&mut self, ports: &[u16]) -> Result<Vec<Block>, ClientError> {
        let ip = self.writer.peer_addr()?.ip();
        let mut threads = Vec::new();
        for &port in ports {
            let addr = SocketAddr::new(ip, port);
            threads.push(std::thread::spawn(move || -> std::io::Result<Vec<Block>> {
                let mut conn = TcpStream::connect(addr)?;
                conn.set_read_timeout(Some(Duration::from_secs(30)))?;
                let mut dec = BlockDecoder::new();
                let mut out = Vec::new();
                let mut buf = [0u8; 64 * 1024];
                loop {
                    let n = match conn.read(&mut buf) {
                        Ok(n) => n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => return Err(e),
                    };
                    if n == 0 {
                        break;
                    }
                    dec.feed(&buf[..n]);
                    while let Some(b) = dec.next_block().map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })? {
                        let eod = b.is_eod();
                        out.push(b);
                        if eod {
                            return Ok(out);
                        }
                    }
                }
                Ok(out)
            }));
        }
        let mut all = Vec::new();
        for t in threads {
            match t.join() {
                Ok(Ok(mut blocks)) => all.append(&mut blocks),
                Ok(Err(e)) => return Err(ClientError::Io(e)),
                Err(_) => return Err(ClientError::Protocol("data thread panicked".into())),
            }
        }
        Ok(all)
    }

    fn expect_completion(&mut self) -> Result<(), ClientError> {
        let r = self.read_reply()?;
        if r.code == 226 {
            Ok(())
        } else {
            Err(ClientError::Refused(r))
        }
    }

    fn command(&mut self, cmd: &Command) -> Result<Reply, ClientError> {
        self.send_command(cmd)?;
        self.read_reply()
    }

    /// Send a command without waiting for the reply (needed to interleave
    /// two control channels during third-party transfers).
    fn send_command(&mut self, cmd: &Command) -> Result<(), ClientError> {
        self.writer.write_all(cmd.format().as_bytes())?;
        self.writer.write_all(b"\r\n")?;
        Ok(())
    }

    fn command_expect(&mut self, cmd: &Command, code: u16) -> Result<Reply, ClientError> {
        let r = self.command(cmd)?;
        if r.code == code {
            Ok(r)
        } else {
            Err(ClientError::Refused(r))
        }
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("server closed control channel".into()));
        }
        Reply::parse(&line).ok_or_else(|| ClientError::Protocol(format!("bad reply: {line:?}")))
    }
}

/// Third-party transfer (a headline GridFTP feature: "third-party control
/// of data transfer"): the client orchestrates a direct server→server
/// copy over its two control channels — data never touches the client.
/// `dst` is put into striped-passive mode (`SPAS` + `STOR`); `src` is told
/// to connect out to those ports (`SPOR`) and `RETR`. The destination's
/// copy is CRC-verified against the source. Returns the bytes moved.
pub fn third_party_copy(
    src: &mut GridFtpClient,
    dst: &mut GridFtpClient,
    src_path: &str,
    dst_path: &str,
    channels: u32,
) -> Result<u64, ClientError> {
    let size = src.size(src_path)?;
    let expected_crc = src.cksm(src_path, 0, -1)?;
    // Destination: open striped-passive data ports and start the store.
    let ports = dst.spas(channels.max(1))?;
    let dst_ip = dst.writer.peer_addr()?.ip();
    let targets: Vec<SocketAddr> = ports.iter().map(|&p| SocketAddr::new(dst_ip, p)).collect();
    dst.send_command(&Command::Stor { path: dst_path.into(), size })?;
    let opening = dst.read_reply()?;
    if opening.code != 150 {
        return Err(ClientError::Refused(opening));
    }
    // Source: connect out to the destination's ports and send.
    src.command_expect(&Command::Spor(targets), 200)?;
    src.send_command(&Command::Retr(src_path.into()))?;
    let opening = src.read_reply()?;
    if opening.code != 150 {
        return Err(ClientError::Refused(opening));
    }
    src.expect_completion()?;
    dst.expect_completion()?;
    // End-to-end integrity: the destination recomputes the CRC.
    let actual = dst.cksm(dst_path, 0, -1)?;
    if actual != expected_crc {
        return Err(ClientError::Corrupt { expected: expected_crc, actual });
    }
    Ok(size)
}

/// Striped retrieval over real TCP: fetch one file from `m` stripe servers
/// (each holding a full replica), each serving a contiguous byte range
/// over its own control + data channels — the "m hosts to n hosts" mode.
/// The reassembled file is CRC-verified against the first server.
pub fn striped_get(
    stripes: &[(SocketAddr, ClientConfig)],
    path: &str,
) -> Result<Bytes, ClientError> {
    assert!(!stripes.is_empty(), "need at least one stripe server");
    // Size and reference CRC from the first stripe.
    let (size, expected_crc) = {
        let mut c = GridFtpClient::connect(stripes[0].0, stripes[0].1.clone())?;
        let size = c.size(path)?;
        let crc = c.cksm(path, 0, -1)?;
        (size, crc)
    };
    let m = stripes.len() as u64;
    let per = size / m;
    let mut threads = Vec::new();
    for (i, (addr, cfg)) in stripes.iter().enumerate() {
        let (addr, cfg) = (*addr, cfg.clone());
        let path = path.to_string();
        let start = per * i as u64;
        let len = if i as u64 == m - 1 { size - start } else { per };
        threads.push(std::thread::spawn(move || -> Result<(u64, Bytes), ClientError> {
            if len == 0 {
                return Ok((start, Bytes::new()));
            }
            let mut c = GridFtpClient::connect(addr, cfg)?;
            let chunk = c.get_partial(&path, start, len)?;
            Ok((start, chunk))
        }));
    }
    let mut buf = vec![0u8; size as usize];
    for t in threads {
        let (start, chunk) =
            t.join().map_err(|_| ClientError::Protocol("stripe thread panicked".into()))??;
        buf[start as usize..start as usize + chunk.len()].copy_from_slice(&chunk);
    }
    let actual = crc32(&buf);
    if actual != expected_crc {
        return Err(ClientError::Corrupt { expected: expected_crc, actual });
    }
    Ok(Bytes::from(buf))
}
