//! The file store a GridFTP server serves from.
//!
//! GDMP adapts its per-site disk pool to this trait; tests use the simple
//! in-memory implementation.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

/// What a server needs from its storage backend.
pub trait FileStore: Send + Sync + 'static {
    fn get(&self, name: &str) -> Option<Bytes>;
    fn put(&self, name: &str, data: Bytes) -> Result<(), String>;
    fn delete(&self, name: &str) -> Result<(), String>;
    fn size(&self, name: &str) -> Option<u64>;
}

/// In-memory store, shared across server threads.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    files: Arc<RwLock<HashMap<String, Bytes>>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with(files: &[(&str, Bytes)]) -> Self {
        let s = Self::new();
        for (n, d) in files {
            s.put(n, d.clone()).expect("fresh store accepts files");
        }
        s
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.files.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl FileStore for MemStore {
    fn get(&self, name: &str) -> Option<Bytes> {
        self.files.read().get(name).cloned()
    }

    fn put(&self, name: &str, data: Bytes) -> Result<(), String> {
        self.files.write().insert(name.to_string(), data);
        Ok(())
    }

    fn delete(&self, name: &str) -> Result<(), String> {
        self.files.write().remove(name).map(|_| ()).ok_or_else(|| format!("no such file: {name}"))
    }

    fn size(&self, name: &str) -> Option<u64> {
        self.files.read().get(name).map(|d| d.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_crud() {
        let s = MemStore::new();
        assert!(s.get("a").is_none());
        s.put("a", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(s.size("a"), Some(5));
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"hello"));
        s.delete("a").unwrap();
        assert!(s.delete("a").is_err());
    }

    #[test]
    fn memstore_is_shared_across_clones() {
        let s = MemStore::new();
        let s2 = s.clone();
        s.put("x", Bytes::from_static(b"1")).unwrap();
        assert!(s2.get("x").is_some());
    }
}
