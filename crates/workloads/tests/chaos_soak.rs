//! The convergence soak: seeded chaos against a 5-site grid.
//!
//! Three fixed seeds (the `ci.sh --chaos-smoke` set) must each converge —
//! every invariant clean after faults heal and queues drain — and the same
//! seed must reproduce the identical event trace twice.

use gdmp_workloads::{run_soak, ChaosMode, SoakSpec};

/// The smoke-test seeds. Each derived plan contains site crashes, link
/// flaps, a partition, and RPC drops (ChaosPlan defaults).
const SEEDS: [u64; 3] = [11, 42, 1337];

#[test]
fn seeded_soaks_converge() {
    for seed in SEEDS {
        let out = run_soak(&SoakSpec::quick(ChaosMode::Seeded(seed)));
        // A failing run must name its seed so it can be replayed.
        out.report.assert_clean(&format!("seed={seed}"));
        assert!(out.published > 0, "seed={seed}: nothing published");
        assert!(
            out.replicated >= out.published,
            "seed={seed}: full-mesh fan-out should replicate each file several times"
        );
        for kind in ["SiteDown", "SiteUp", "LinkDown", "Partition", "Heal"] {
            assert!(
                out.schedule_debug.contains(kind),
                "seed={seed}: plan lacks {kind}:\n{}",
                out.schedule_debug
            );
        }
    }
}

#[test]
fn same_seed_reproduces_identical_trace() {
    let a = run_soak(&SoakSpec::quick(ChaosMode::Seeded(42)));
    let b = run_soak(&SoakSpec::quick(ChaosMode::Seeded(42)));
    assert_eq!(a.schedule_debug, b.schedule_debug, "derived schedules differ");
    assert_eq!(a.final_clock_ns, b.final_clock_ns, "clocks diverged");
    assert_eq!(a.trace, b.trace, "event traces diverged");
    assert_eq!(
        a.registry.export_json_lines(),
        b.registry.export_json_lines(),
        "telemetry exports diverged"
    );
}

#[test]
fn chaos_run_exercises_the_failure_path() {
    let out = run_soak(&SoakSpec::quick(ChaosMode::Seeded(42)));
    let reg = &out.registry;
    // The schedule fired.
    let chaos_events: u64 = reg
        .metrics_snapshot()
        .iter()
        .filter(|(name, _, _)| name == "chaos_events")
        .map(|(_, _, v)| match v {
            gdmp_telemetry::MetricValue::Counter(c) => *c,
            _ => 0,
        })
        .sum();
    assert!(chaos_events > 0, "no chaos events applied");
    // Recovery machinery left its fingerprints: at least one of the
    // failure-path counters moved (which ones depends on fault timing).
    let failure_counters: u64 = reg
        .metrics_snapshot()
        .iter()
        .filter(|(name, _, _)| {
            [
                "rpc_failures",
                "source_unreachable",
                "notices_journaled",
                "notices_replayed",
                "resync_repairs",
                "replications_deferred",
                "recovery_verdicts",
                "backoff_waits",
                "breaker_trips",
            ]
            .contains(&name.as_str())
        })
        .map(|(_, _, v)| match v {
            gdmp_telemetry::MetricValue::Counter(c) => *c,
            _ => 0,
        })
        .sum();
    assert!(failure_counters > 0, "chaos run never touched the failure path");
}
