//! Causal-tracing smoke: one striped fetch must yield, per replication, a
//! single connected span tree whose critical path exactly partitions the
//! end-to-end latency, and the whole telemetry export must be
//! byte-identical across same-seed runs. This is the test behind
//! `ci.sh --trace-smoke`.

use std::sync::OnceLock;

use gdmp_telemetry::analysis::{breakdown, critical_path, trace_is_connected, trace_roots};
use gdmp_telemetry::{SpanId, TraceId};
use gdmp_workloads::fetch::{run_fetch, striped_policy, FetchOutcome, FetchSpec};

fn striped_spec() -> FetchSpec {
    FetchSpec { policy: striped_policy(), ..FetchSpec::default() }
}

/// One shared run: the scenario is deterministic, so every test can read
/// the same outcome (and the smoke stays well under its time budget).
fn shared_run() -> &'static FetchOutcome {
    static RUN: OnceLock<FetchOutcome> = OnceLock::new();
    RUN.get_or_init(|| run_fetch(&striped_spec()))
}

#[test]
fn striped_fetch_builds_connected_trace_trees() {
    let out = shared_run();
    let spans = out.registry.spans();
    assert!(!spans.is_empty(), "a traced fetch must record spans");
    // Every span carries a trace id and every trace hangs off one root.
    assert!(spans.iter().all(|s| s.trace != TraceId::NONE));
    let roots = trace_roots(&spans);
    let replicate_roots: Vec<SpanId> = roots
        .iter()
        .copied()
        .filter(|&id| spans.iter().any(|s| s.id == id && s.name == "replicate"))
        .collect();
    // Two seeding replications plus the measured striped fetch.
    assert_eq!(replicate_roots.len(), 3, "roots: {roots:?}");
    for root in replicate_roots {
        assert!(trace_is_connected(&spans, root), "trace of {root:?} must be one tree");
    }
}

#[test]
fn critical_path_partitions_the_measured_fetch() {
    let out = shared_run();
    let spans = out.registry.spans();
    // The measured fetch is the last replicate root (seeding came first).
    let root = *trace_roots(&spans)
        .iter()
        .rfind(|&&id| spans.iter().any(|s| s.id == id && s.name == "replicate"))
        .expect("measured fetch root");
    let root_rec = spans.iter().find(|s| s.id == root).unwrap();
    let segments = critical_path(&spans, root);
    assert!(!segments.is_empty());
    // Exact partition: contiguous coverage of the root interval.
    assert_eq!(segments.first().unwrap().start_ns, root_rec.start_ns);
    assert_eq!(segments.last().unwrap().end_ns, root_rec.end_ns.unwrap());
    for pair in segments.windows(2) {
        assert_eq!(pair[0].end_ns, pair[1].start_ns, "segments must be contiguous");
    }
    let total: u64 = segments.iter().map(|s| s.duration_ns()).sum();
    assert_eq!(
        total,
        root_rec.duration_ns().unwrap(),
        "critical-path segments must sum to the end-to-end latency"
    );
    // The striped fetch's tree is non-trivial: selection, per-chunk
    // transfers, and the gridftp sub-spans all show up on the path.
    let names: Vec<String> = breakdown(&segments).into_iter().map(|(n, _)| n).collect();
    assert!(names.len() >= 3, "want >= 3 distinct segments, got {names:?}");
    assert!(names.iter().any(|n| n == "transfer_steady"), "{names:?}");
    let tree_size = spans.iter().filter(|s| s.trace == root_rec.trace).count();
    assert!(tree_size >= 10, "striped fetch should record a deep tree, got {tree_size}");
}

#[test]
fn same_seed_runs_export_identical_traces_and_series() {
    let a = shared_run();
    let b = run_fetch(&striped_spec());
    assert_eq!(a.registry.spans(), b.registry.spans());
    assert_eq!(
        a.registry.export_json_lines(),
        b.registry.export_json_lines(),
        "same-seed exports (spans, metrics, time-series) must be byte-identical"
    );
    // The fetch scenario records real time-series, not just spans.
    let series = a.registry.timeseries_snapshot();
    assert!(series.iter().any(|s| s.name == "link_bytes"));
    assert!(series.iter().any(|s| s.name == "fetch_bytes"));
}
