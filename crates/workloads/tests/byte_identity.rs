//! Same-seed byte-identity across the interned-id control plane: the
//! interning refactor moved every hot-path map to id keys, and this suite
//! pins the observable contract — same spec + seed ⇒ identical traces,
//! final clocks, and telemetry exports, and the chaos inertness contract
//! (off == installed-but-empty) survives unchanged. Strings exist only at
//! export boundaries, so nothing in the output may shift by a byte.

use gdmp_workloads::catalog::{run_catalog_soak, CatalogSoakSpec};
use gdmp_workloads::grid::{run_grid_soak, GridSoakSpec};
use gdmp_workloads::{run_soak, ChaosMode, SoakSpec};

#[test]
fn grid_soak_full_scale_replays_byte_identically() {
    let a = run_grid_soak(&GridSoakSpec::full());
    let b = run_grid_soak(&GridSoakSpec::full());
    assert_eq!(a.sites, 105);
    assert_eq!(a.trace, b.trace, "event traces diverged");
    assert_eq!(a.final_clock_ns, b.final_clock_ns, "clocks diverged");
    assert_eq!(
        a.registry.export_json_lines(),
        b.registry.export_json_lines(),
        "telemetry exports diverged"
    );
}

#[test]
fn grid_soak_seed_changes_the_traffic_but_stays_never_wrong() {
    let base = run_grid_soak(&GridSoakSpec::quick());
    let other = run_grid_soak(&GridSoakSpec { seed: 0xF00D, ..GridSoakSpec::quick() });
    assert_ne!(
        (base.lookups, base.publishes, base.fetches),
        (other.lookups, other.publishes, other.fetches),
        "different seeds should draw a different op mix"
    );
    assert_eq!(base.wrong_answers, 0);
    assert_eq!(other.wrong_answers, 0);
}

#[test]
fn catalog_soak_same_seed_export_is_byte_identical() {
    let a = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0x1D5)));
    let b = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0x1D5)));
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.final_clock_ns, b.final_clock_ns);
    assert_eq!(a.registry.export_json_lines(), b.registry.export_json_lines());
}

#[test]
fn chaos_inertness_contract_survives_interning() {
    // An installed-but-empty schedule must cost exactly nothing: the
    // id-keyed chaos state may not perturb a single timestamp or counter.
    let off = run_soak(&SoakSpec::quick(ChaosMode::Off));
    let empty = run_soak(&SoakSpec::quick(ChaosMode::EmptySchedule));
    assert_eq!(off.published, empty.published);
    assert_eq!(off.replicated, empty.replicated);
    assert_eq!(off.final_clock_ns, empty.final_clock_ns);
    assert_eq!(off.trace, empty.trace);
    assert_eq!(off.registry.export_json_lines(), empty.registry.export_json_lines());
}
