//! The acceptance shape of the federated-catalog soak: 100+ sites (a
//! multi-tier RLI tree), seeded RLI crashes, soft-state update losses,
//! catalog delays, and the base site/link/partition chaos — across
//! several seeds, the federation never returns a wrong answer, lookups
//! complete via the degradation ladder, and the same seed replays byte
//! for byte.

use gdmp_workloads::catalog::{run_catalog_soak, CatalogSoakSpec};
use gdmp_workloads::soak::ChaosMode;

#[test]
fn hundred_site_catalog_soak_is_never_wrong_across_seeds() {
    for seed in [0xA11CE, 0xB0B, 0x05EE_DCA7] {
        let out = run_catalog_soak(&CatalogSoakSpec::full(ChaosMode::Seeded(seed)));
        assert!(out.never_wrong(), "seed {seed:#x}: wrong answers: {:?}", out.stats);
        assert!(
            out.converged(),
            "seed {seed:#x}: {:?}\nschedule:\n{}",
            out.report.violations,
            out.schedule_debug
        );
        assert!(out.answered > 0, "seed {seed:#x}: no lookup ever completed");
        // The post-heal sweep answered every surviving file, so honest
        // misses are bounded by the chaotic phase's lookup count.
        assert!(out.answered + out.failed == out.lookups, "seed {seed:#x}: lost lookups");
    }
}

#[test]
fn hundred_site_same_seed_replays_byte_identically() {
    let a = run_catalog_soak(&CatalogSoakSpec::full(ChaosMode::Seeded(0xD15C)));
    let b = run_catalog_soak(&CatalogSoakSpec::full(ChaosMode::Seeded(0xD15C)));
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.final_clock_ns, b.final_clock_ns);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.registry.export_json_lines(), b.registry.export_json_lines());
}

#[test]
fn hundred_site_ladder_visits_the_slow_rungs_under_chaos() {
    // Across seeds the degradation ladder should actually be exercised:
    // warm RLI hits dominate, but dead subtrees force scatters or
    // fan-out fallbacks somewhere.
    let mut slow_rungs = 0usize;
    let mut degraded = 0usize;
    for seed in [0xA11CE, 0xB0B, 0x05EE_DCA7, 0xD15C] {
        let out = run_catalog_soak(&CatalogSoakSpec::full(ChaosMode::Seeded(seed)));
        assert!(out.via_rli + out.via_local > 0, "seed {seed:#x}: index never hit");
        slow_rungs += out.via_fallback + out.via_scatter;
        degraded += out.degraded_answers;
    }
    assert!(slow_rungs > 0, "no seed ever fell off the fast path");
    assert!(degraded > 0, "no seed ever answered through a dead subtree");
}
