//! Zipf-distributed sampling.
//!
//! The paper motivates replication with web-caching results on Zipf-like
//! access distributions \[Bres99\]: most accesses hit few objects. The
//! sampler is used for access-pattern workloads in the cache benches.

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` items with exponent `alpha` (> 0).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(alpha > 0.0, "alpha must be positive");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point droop at the tail.
        *weights.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf: weights }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn head_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dwarf rank 500.
        assert!(counts[0] > 50 * counts[500].max(1), "{} vs {}", counts[0], counts[500]);
        // Top 10% of ranks should take the majority of accesses at α=1.
        let head: usize = counts[..100].iter().sum();
        assert!(head > 10_000, "head={head}");
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 1.2);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn single_item_always_rank_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
