//! # gdmp-workloads — synthetic workload generators
//!
//! The paper's evaluation inputs, reproducible at laptop scale:
//!
//! * [`cascade`] — the Section 5.1 physics analysis cascade (10⁹ → 10⁴
//!   events, 100 B → 1 MB objects, scaled);
//! * [`population`] — event-store population with object→file placement
//!   policies (clustered, mixed, striped);
//! * [`transfer`] — the Figure 5/6 parameter grids;
//! * [`zipf`] — Zipf access sampling for cache workloads;
//! * [`soak`] — seeded chaos soak: replication under crashes, link cuts,
//!   and partitions, checked against grid-wide invariants;
//! * [`catalog`] — federated-catalog soak: Zipf lookups on 100+ sites
//!   under RLI crashes, update losses, and catalog delays — the
//!   never-wrong contract checked every round;
//! * [`fetch`] — the multi-source fetch scenario: striped pulls over
//!   asymmetric WAN paths, with and without a mid-transfer source crash;
//! * [`fanout`] — many independent CERN→site pushes in one network, the
//!   scaling scenario for the sharded simnet engine;
//! * [`observe`] — grid-level time-series sampling (tape staging backlog,
//!   replica disk-hit rate) for the scenario drivers;
//! * [`scenario`] — the declarative scenario DSL: a strict JSON schema
//!   describing sites, storage, links, faults, and workload, compiled
//!   into the exact grids the runners above build — same seed, same
//!   bytes.

pub mod cascade;
pub mod catalog;
pub mod fanout;
pub mod fetch;
pub mod grid;
pub mod observe;
pub mod population;
pub mod scenario;
pub mod soak;
pub mod transfer;
pub mod zipf;

pub use cascade::{CascadeSpec, CascadeStep, StepResult};
pub use catalog::{run_catalog_soak, CatalogSoakOutcome, CatalogSoakSpec};
pub use fanout::{run_fanout, FanoutOutcome, FanoutSpec};
pub use fetch::{run_fetch, striped_policy, FetchOutcome, FetchSpec};
pub use grid::{run_grid_soak, GridSoakOutcome, GridSoakSpec};
pub use population::{Placement, Population};
pub use scenario::{run_scenario, Scenario, ScenarioError, ScenarioOutcome};
pub use soak::{run_soak, ChaosMode, SoakOutcome, SoakSpec};
pub use transfer::{FigureSweep, MB};
pub use zipf::Zipf;
