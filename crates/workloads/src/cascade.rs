//! The physics analysis cascade of Section 5.1.
//!
//! "One might start with a set of 10⁹ stored events ... and narrow this
//! down in a number of steps to a smaller set \[of\] 10⁴ events... The
//! subsequent data analysis steps will thus examine smaller and smaller
//! sets (10⁹ down to 10⁴) of larger and larger (100 byte to 10 MB)
//! objects." The cascade generator reproduces that shape at a laptop
//! scale factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gdmp_objectstore::{LogicalOid, ObjectKind};

/// One selection step: keep `fraction` of the surviving events and read
/// objects of `reads` kind to decide the next cut.
#[derive(Debug, Clone, Copy)]
pub struct CascadeStep {
    pub fraction: f64,
    pub reads: ObjectKind,
}

/// A whole analysis cascade.
#[derive(Debug, Clone)]
pub struct CascadeSpec {
    /// Events in the initial sample (the paper's 10⁹, scaled down).
    pub initial_events: u64,
    pub steps: Vec<CascadeStep>,
    pub seed: u64,
}

impl CascadeSpec {
    /// The canonical cascade shape: tag scan → AOD cut → ESD cut → RAW
    /// examination, each step keeping ~10% and escalating object size.
    pub fn canonical(initial_events: u64, seed: u64) -> Self {
        CascadeSpec {
            initial_events,
            steps: vec![
                CascadeStep { fraction: 0.1, reads: ObjectKind::Tag },
                CascadeStep { fraction: 0.1, reads: ObjectKind::Aod },
                CascadeStep { fraction: 0.1, reads: ObjectKind::Esd },
                CascadeStep { fraction: 0.1, reads: ObjectKind::Raw },
            ],
            seed,
        }
    }

    /// Run the cascade: returns, per step, the events surviving *into* the
    /// step and the objects the step must read. The physics is stochastic;
    /// a fresh selection is uncorrelated with anyone else's ("the
    /// physicist just selected ... a completely fresh event set which
    /// nobody else has worked on yet").
    pub fn run(&self) -> Vec<StepResult> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut survivors: Vec<u64> = (0..self.initial_events).collect();
        let mut out = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let reads: Vec<LogicalOid> =
                survivors.iter().map(|&e| LogicalOid::new(e, step.reads)).collect();
            // Independent Bernoulli survival per event.
            let next: Vec<u64> =
                survivors.iter().copied().filter(|_| rng.gen::<f64>() < step.fraction).collect();
            out.push(StepResult {
                entered: survivors.len() as u64,
                survived: next.len() as u64,
                reads,
                kind: step.reads,
            });
            survivors = next;
        }
        out
    }
}

/// Result of one cascade step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Events entering the step.
    pub entered: u64,
    /// Events surviving the cut.
    pub survived: u64,
    /// Objects the step reads (one per entering event).
    pub reads: Vec<LogicalOid>,
    pub kind: ObjectKind,
}

impl StepResult {
    /// Bytes the step reads at nominal object sizes.
    pub fn bytes_read(&self) -> u64 {
        self.entered * self.kind.nominal_size() as u64
    }

    /// Selection fraction relative to the initial sample.
    pub fn selectivity(&self, initial: u64) -> f64 {
        self.entered as f64 / initial as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_shape_narrows_by_decades() {
        let spec = CascadeSpec::canonical(100_000, 1);
        let steps = spec.run();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0].entered, 100_000);
        // Each step keeps ~10% (binomial noise allowed).
        for w in steps.windows(2) {
            let ratio = w[1].entered as f64 / w[0].entered as f64;
            assert!((0.05..0.2).contains(&ratio), "ratio {ratio}");
        }
        // Object sizes escalate while sets shrink.
        assert!(steps[0].kind.nominal_size() < steps[3].kind.nominal_size());
    }

    #[test]
    fn reads_match_entering_events() {
        let spec = CascadeSpec::canonical(1000, 2);
        let steps = spec.run();
        for s in &steps {
            assert_eq!(s.reads.len() as u64, s.entered);
            assert!(s.reads.iter().all(|o| o.kind == s.kind));
        }
    }

    #[test]
    fn deterministic_per_seed_fresh_per_physicist() {
        let a = CascadeSpec::canonical(10_000, 7).run();
        let b = CascadeSpec::canonical(10_000, 7).run();
        let c = CascadeSpec::canonical(10_000, 8).run();
        assert_eq!(a[2].reads, b[2].reads);
        // A different physicist selects a (statistically) different set.
        assert_ne!(a[2].reads, c[2].reads);
    }

    #[test]
    fn middle_step_is_the_papers_thought_experiment() {
        // Section 5.1: "after isolating 10⁶ events, the physicist will now
        // need the corresponding set of 10⁶ objects of some type X".
        // Scaled: after two 10% cuts of 10⁵ events, ~10³ ESD objects.
        let spec = CascadeSpec::canonical(100_000, 3);
        let steps = spec.run();
        let esd_step = &steps[2];
        assert_eq!(esd_step.kind, ObjectKind::Esd);
        assert!((500..2_000).contains(&esd_step.entered), "{}", esd_step.entered);
    }

    #[test]
    fn bytes_read_uses_nominal_sizes() {
        let spec = CascadeSpec::canonical(1000, 4);
        let steps = spec.run();
        assert_eq!(steps[0].bytes_read(), 1000 * 100); // tags: 100 B each
    }
}
