//! The transfer workloads of Section 6: the exact file sizes, buffer
//! settings, and stream counts of Figures 5 and 6.

/// One figure's parameter grid.
#[derive(Debug, Clone)]
pub struct FigureSweep {
    /// File sizes in bytes (the paper's 1/25/50/100 MB).
    pub file_sizes: Vec<u64>,
    /// Stream counts (1..=10 in the paper).
    pub streams: Vec<u32>,
    /// Socket buffer in bytes.
    pub buffer: u64,
    pub label: &'static str,
}

pub const MB: u64 = 1024 * 1024;

impl FigureSweep {
    /// Figure 5: untuned (64 KB) buffers.
    pub fn figure5() -> Self {
        FigureSweep {
            file_sizes: vec![MB, 25 * MB, 50 * MB, 100 * MB],
            streams: (1..=10).collect(),
            buffer: 64 * 1024,
            label: "Figure 5 (untuned 64 KB buffers)",
        }
    }

    /// Figure 6: tuned 1 MB buffers.
    pub fn figure6() -> Self {
        FigureSweep { buffer: MB, label: "Figure 6 (tuned 1 MB buffers)", ..Self::figure5() }
    }

    /// A reduced grid for fast test runs.
    pub fn quick(buffer: u64) -> Self {
        FigureSweep {
            file_sizes: vec![MB, 25 * MB],
            streams: vec![1, 4, 8],
            buffer,
            label: "quick sweep",
        }
    }

    pub fn points(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.file_sizes.iter().flat_map(move |&f| self.streams.iter().map(move |&s| (f, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_matches_paper_grid() {
        let f = FigureSweep::figure5();
        assert_eq!(f.file_sizes, vec![MB, 25 * MB, 50 * MB, 100 * MB]);
        assert_eq!(f.streams.len(), 10);
        assert_eq!(f.buffer, 64 * 1024);
        assert_eq!(f.points().count(), 40);
    }

    #[test]
    fn figure6_differs_only_in_buffer() {
        let a = FigureSweep::figure5();
        let b = FigureSweep::figure6();
        assert_eq!(a.file_sizes, b.file_sizes);
        assert_eq!(a.streams, b.streams);
        assert_eq!(b.buffer, MB);
    }
}
