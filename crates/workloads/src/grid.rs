//! Grid-scale control-plane soak over a Tier-0/1/2 topology.
//!
//! The paper's deployment picture (§1, §6) is the LHC computing model: one
//! Tier-0 core (CERN), a ring of Tier-1 regional centres, and Tier-2 leaf
//! sites hanging off each region. This workload generates that topology at
//! a configurable scale — the `full` spec builds 105 sites and the
//! generator goes well past 200 — enables the LRC/RLI federation, and
//! drives a Zipf-distributed mix of lookup / publish / fetch traffic
//! through the interned-id control plane.
//!
//! Everything is sim-time deterministic: same spec + seed ⇒ identical op
//! counts, ladder splits, final clock, telemetry export, and trace. The
//! wall-clock side (ops/sec) is measured by `gdmp-bench`'s `bench_grid`
//! binary, not here.

use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;

/// Topology + traffic shape of one grid-scale soak.
#[derive(Debug, Clone)]
pub struct GridSoakSpec {
    /// Tier-1 regional centres (the Tier-0 core is always exactly one).
    pub tier1: usize,
    /// Tier-2 leaf sites per regional centre.
    pub tier2_per_tier1: usize,
    /// Files seeded on every site before traffic starts.
    pub files_per_site: usize,
    /// Traffic rounds; the sim clock advances [`GridSoakSpec::round_gap`]
    /// between rounds so soft-state propagation interleaves with load.
    pub rounds: usize,
    /// Operations per round (lookup / publish / fetch, Zipf-selected).
    pub ops_per_round: usize,
    /// Zipf exponent over the file population (rank 0 hottest).
    pub zipf_alpha: f64,
    /// Payload size of every seeded and published file, bytes.
    pub file_size: usize,
    /// Sim-time gap between rounds.
    pub round_gap: SimDuration,
    /// Seed for the op mix (requesters, ranks, op kinds).
    pub seed: u64,
}

impl GridSoakSpec {
    /// Small topology (16 sites) that keeps test and smoke runs fast.
    pub fn quick() -> Self {
        GridSoakSpec {
            tier1: 3,
            tier2_per_tier1: 4,
            files_per_site: 2,
            rounds: 3,
            ops_per_round: 24,
            zipf_alpha: 0.9,
            file_size: 8 * 1024,
            round_gap: SimDuration::from_secs(30),
            seed: 0x6D19_50AC,
        }
    }

    /// The acceptance-scale topology: 1 + 8 + 8×12 = 105 sites.
    pub fn full() -> Self {
        GridSoakSpec {
            tier1: 8,
            tier2_per_tier1: 12,
            rounds: 4,
            ops_per_round: 48,
            ..Self::quick()
        }
    }

    /// Scale the leaf fan-out until the topology reaches at least
    /// `total_sites` sites (used by the 200+-site bench points).
    pub fn at_scale(total_sites: usize) -> Self {
        let mut spec = Self::full();
        while spec.site_count() < total_sites {
            spec.tier2_per_tier1 += 1;
        }
        spec
    }

    /// 1 Tier-0 + Tier-1 ring + Tier-2 leaves.
    pub fn site_count(&self) -> usize {
        1 + self.tier1 + self.tier1 * self.tier2_per_tier1
    }

    /// Deterministic site names, Tier-0 first, then each region followed by
    /// its leaves.
    pub fn site_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.site_count());
        names.push(tier0_name());
        for r in 0..self.tier1 {
            names.push(tier1_name(r));
            for s in 0..self.tier2_per_tier1 {
                names.push(tier2_name(r, s));
            }
        }
        names
    }
}

fn tier0_name() -> String {
    "t0-core".to_string()
}

fn tier1_name(region: usize) -> String {
    format!("t1-r{region:02}")
}

fn tier2_name(region: usize, site: usize) -> String {
    format!("t2-r{region:02}-s{site:02}")
}

/// Counters and artifacts of one soak run. Every field except `registry`
/// is deterministic for a given spec.
#[derive(Debug)]
pub struct GridSoakOutcome {
    pub sites: usize,
    pub lookups: u64,
    pub publishes: u64,
    pub fetches: u64,
    /// Lookups answered by the requester's own LRC or a confirmed RLI hint.
    pub index_hits: u64,
    pub fallbacks: u64,
    pub scatters: u64,
    pub confirms: u64,
    pub false_positives: u64,
    /// The federation's correctness contract: must be zero.
    pub wrong_answers: u64,
    pub final_clock_ns: u64,
    /// Telemetry events formatted `"{t_ns} {kind} {detail:?}"`.
    pub trace: Vec<String>,
    pub registry: Registry,
}

impl GridSoakOutcome {
    /// Fraction of lookups the index answered without fan-out or scatter.
    pub fn replica_hit_rate(&self) -> f64 {
        self.index_hits as f64 / (self.lookups as f64).max(1.0)
    }
}

/// Build the tiered grid, seed the Zipf population, run the traffic mix.
/// A thin wrapper over the scenario DSL
/// ([`crate::scenario::Scenario::grid_soak`]), so a committed
/// `scenarios/` file replays exactly this run.
pub fn run_grid_soak(spec: &GridSoakSpec) -> GridSoakOutcome {
    crate::scenario::run_grid_scenario(&crate::scenario::Scenario::grid_soak(spec))
        .expect("builtin grid scenario is always valid")
}

pub(crate) fn file_name(f: usize) -> String {
    format!("file{f:05}.dat")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_is_deterministic() {
        let a = run_grid_soak(&GridSoakSpec::quick());
        let b = run_grid_soak(&GridSoakSpec::quick());
        assert_eq!(a.sites, 16);
        assert_eq!(a.lookups, b.lookups);
        assert_eq!(a.publishes, b.publishes);
        assert_eq!(a.fetches, b.fetches);
        assert_eq!(a.index_hits, b.index_hits);
        assert_eq!(a.confirms, b.confirms);
        assert_eq!(a.final_clock_ns, b.final_clock_ns);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.registry.export_json_lines(), b.registry.export_json_lines());
    }

    #[test]
    fn quick_soak_never_wrong_and_mostly_index_hits() {
        let out = run_grid_soak(&GridSoakSpec::quick());
        assert_eq!(out.wrong_answers, 0);
        assert!(out.lookups > 0 && out.publishes > 0 && out.fetches > 0, "all op kinds exercised");
        assert!(out.replica_hit_rate() > 0.5, "warm index should answer most Zipf lookups");
    }

    #[test]
    fn topology_generator_scales_past_two_hundred_sites() {
        let spec = GridSoakSpec::at_scale(200);
        assert!(spec.site_count() >= 200);
        assert_eq!(spec.site_names().len(), spec.site_count());
        assert_eq!(GridSoakSpec::full().site_count(), 105);
    }
}
