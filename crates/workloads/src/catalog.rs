//! Federated-catalog soak: a 100-plus-site grid publishes a file
//! population, then fires Zipf-skewed lookups at the federation while a
//! seeded fault plan crashes RLI nodes, loses soft-state updates, delays
//! catalog answers, and runs the base site/link/partition chaos — and the
//! federation must *never* return a wrong answer. Slower rungs of the
//! degradation ladder are fine; a holder the owning LRC disavows is not.
//!
//! Like [`crate::soak`], the run is a pure function of the spec: same
//! seed → identical trace, final clock, and telemetry export, byte for
//! byte.

use bytes::Bytes;
use gdmp::chaos::ChaosPlan;
use gdmp::invariants::{check_grid, InvariantReport};
use gdmp::prelude::WanProfile;
use gdmp::{BackoffRetry, BreakerConfig, FaultSchedule, GdmpError, Grid, LookupVia, SiteConfig};
use gdmp_replica_catalog::{FederatedCatalog, FederationConfig, FederationStats};
use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::soak::ChaosMode;
use crate::zipf::Zipf;

/// Parameters of one catalog soak run.
#[derive(Debug, Clone)]
pub struct CatalogSoakSpec {
    /// Number of sites; the acceptance runs use 100+.
    pub sites: usize,
    /// Files published per site (each file lives at exactly one owner
    /// until faults and lookups are done — lookups, not transfers, are
    /// under test here).
    pub files_per_site: usize,
    /// Lookup rounds after the publish phase.
    pub lookup_rounds: usize,
    /// Zipf-sampled lookups per round.
    pub lookups_per_round: usize,
    /// Zipf exponent over the file population (rank 0 hottest).
    pub zipf_alpha: f64,
    /// Size of each published file (kept small: catalog traffic, not
    /// GridFTP throughput, is the workload).
    pub file_size: u64,
    /// Sim time between lookup rounds (also the soft-state cadence the
    /// default [`FederationConfig`] pushes on).
    pub round_gap: SimDuration,
    pub chaos: ChaosMode,
}

impl CatalogSoakSpec {
    /// Sized for CI: two dozen sites, a few rounds — runs in well under a
    /// second.
    pub fn quick(chaos: ChaosMode) -> Self {
        CatalogSoakSpec {
            sites: 24,
            files_per_site: 2,
            lookup_rounds: 4,
            lookups_per_round: 16,
            zipf_alpha: 0.9,
            file_size: 8 * 1024,
            round_gap: SimDuration::from_secs(30),
            chaos,
        }
    }

    /// The acceptance shape: 100+ sites, a multi-tier RLI tree.
    pub fn full(chaos: ChaosMode) -> Self {
        CatalogSoakSpec {
            sites: 108,
            lookup_rounds: 6,
            lookups_per_round: 24,
            ..Self::quick(chaos)
        }
    }
}

/// Everything one catalog soak produced.
#[derive(Debug, Clone)]
pub struct CatalogSoakOutcome {
    pub spec_chaos: ChaosMode,
    /// Files published (sites down at publish time skip their turn).
    pub published: usize,
    /// Lookups attempted / answered with confirmed holders.
    pub lookups: usize,
    pub answered: usize,
    /// Lookups that failed honestly (every reachable LRC denied, or the
    /// ladder ran out of reachable LRCs). Nonzero only under chaos.
    pub failed: usize,
    /// Answers per ladder rung, keyed by [`LookupVia::label`] order:
    /// local, rli, fallback, scatter.
    pub via_local: usize,
    pub via_rli: usize,
    pub via_fallback: usize,
    pub via_scatter: usize,
    /// Answers produced while part of the index was dead.
    pub degraded_answers: usize,
    /// The federation's own counters (wrong_answers is the contract).
    pub stats: FederationStats,
    pub final_clock_ns: u64,
    pub schedule_debug: String,
    pub trace: Vec<String>,
    pub report: InvariantReport,
    pub registry: Registry,
}

impl CatalogSoakOutcome {
    pub fn converged(&self) -> bool {
        self.report.is_clean()
    }

    /// The never-wrong contract, directly.
    pub fn never_wrong(&self) -> bool {
        self.stats.wrong_answers == 0
    }
}

fn site_name(i: usize) -> String {
    // Zero-padded so BTreeMap order matches publish order at any scale.
    format!("site{i:03}")
}

fn file_name(f: usize) -> String {
    format!("file{f:04}.dat")
}

/// Run one catalog soak. Deterministic: no wall clocks, no ambient
/// randomness.
pub fn run_catalog_soak(spec: &CatalogSoakSpec) -> CatalogSoakOutcome {
    let names: Vec<String> = (0..spec.sites).map(site_name).collect();
    let fed_config = FederationConfig::default();
    let reg = Registry::with_recorder_capacity(16384);
    reg.enable_timeseries(SimDuration::from_secs(30).nanos());
    let jitter_seed = match spec.chaos {
        ChaosMode::Seeded(s) => s,
        _ => 0,
    };
    let mut builder = Grid::builder("catalog-soak")
        .telemetry_sink(reg.clone())
        .default_profile(WanProfile::cern_anl_production())
        .recovery(Box::new(BackoffRetry::new(jitter_seed)))
        .breaker(BreakerConfig::default())
        .federation(fed_config.clone());
    for (i, name) in names.iter().enumerate() {
        builder = builder.site(SiteConfig::named(name, &format!("{name}.grid"), 500 + i as u64));
    }
    builder = builder.trust_all();
    let mut schedule_debug = String::new();
    builder = match spec.chaos {
        ChaosMode::Off => builder,
        ChaosMode::EmptySchedule => builder.fault_schedule(FaultSchedule::new()),
        ChaosMode::Seeded(seed) => {
            // The RLI topology is a pure function of the site set, so a
            // throwaway federation names the chaos plan's targets.
            let rli_nodes = FederatedCatalog::new(&names, fed_config.clone()).node_names();
            let schedule =
                ChaosPlan::new(seed, &names).with_catalog_chaos(&rli_nodes, 3, 3, 4).schedule();
            schedule_debug = format!("{schedule}");
            builder.fault_schedule(schedule)
        }
    };
    let mut grid = builder.build();
    let horizon = grid.chaos_state().schedule().horizon();

    // Publish phase: every file has exactly one owner, owner i holding
    // files i, i+sites, i+2*sites, ... A site that is down when its turn
    // comes publishes nothing (exactly like the replication soak).
    let total_files = spec.sites * spec.files_per_site;
    let mut published = 0usize;
    for f in 0..total_files {
        let owner = &names[f % spec.sites];
        if grid.chaos_state().is_down(owner) {
            continue;
        }
        let fill = (f % 251) as u8;
        grid.publish_file(
            owner,
            &file_name(f),
            Bytes::from(vec![fill; spec.file_size as usize]),
            "flat",
        )
        .expect("publish on a live site");
        published += 1;
    }

    // Lookup phase: Zipf-skewed queries from rotating requesters while
    // the fault plan does its worst. The one inviolable check runs every
    // round: the federation has never returned a wrong answer.
    let zipf = Zipf::new(total_files.max(1), spec.zipf_alpha);
    let mut rng = StdRng::seed_from_u64(0x0CA7_A106 ^ jitter_seed);
    let mut lookups = 0usize;
    let mut answered = 0usize;
    let mut failed = 0usize;
    let (mut via_local, mut via_rli, mut via_fallback, mut via_scatter) = (0, 0, 0, 0);
    let mut degraded_answers = 0usize;
    for _round in 0..spec.lookup_rounds {
        grid.advance(spec.round_gap);
        for _ in 0..spec.lookups_per_round {
            let requester = &names[rng.gen_range(0..spec.sites)];
            if grid.chaos_state().is_down(requester) {
                continue;
            }
            let lfn = file_name(zipf.sample(&mut rng));
            lookups += 1;
            match grid.lookup_replicas(requester, &lfn) {
                Ok(r) => {
                    answered += 1;
                    match r.via {
                        LookupVia::Local => via_local += 1,
                        LookupVia::Rli => via_rli += 1,
                        LookupVia::Fallback => via_fallback += 1,
                        LookupVia::Scatter => via_scatter += 1,
                        LookupVia::Central => unreachable!("federation is on"),
                    }
                    if r.degraded {
                        degraded_answers += 1;
                    }
                }
                // Honest misses only: the owner's LRC was dead or cut off
                // (retryable), or it was never published because the owner
                // was down at publish time.
                Err(GdmpError::SiteUnreachable(_)) | Err(GdmpError::NotPublished(_)) => failed += 1,
                Err(e) => panic!("unexpected lookup error: {e}"),
            }
        }
        let stats = &grid.federation().expect("federation on").stats;
        assert_eq!(stats.wrong_answers, 0, "federation returned a wrong answer mid-soak");
    }

    // Heal and quiesce: run past the fault horizon, then drain restarts.
    let now = grid.now();
    if horizon > now {
        grid.advance(horizon - now + SimDuration::from_secs(1));
    }
    for _ in 0..20 {
        grid.run_recovery();
        grid.advance(SimDuration::from_secs(30));
        if grid.chaos_state().pending_restarts() == 0 {
            break;
        }
    }

    // Post-heal sweep: with every fault healed and fresh soft state
    // flowed, every published file must be findable again — the ladder
    // always completes once the grid is whole.
    for f in 0..total_files {
        let lfn = file_name(f);
        if grid.catalog.locate(&lfn).map(|l| l.is_empty()).unwrap_or(true) {
            continue; // owner was down at publish time; never existed
        }
        let requester = &names[(f * 7) % spec.sites];
        lookups += 1;
        match grid.lookup_replicas(requester, &lfn) {
            Ok(_) => answered += 1,
            Err(e) => panic!("post-heal lookup of {lfn} failed: {e}"),
        }
    }

    let report = check_grid(&mut grid);
    let stats = grid.federation().expect("federation on").stats.clone();
    let trace = reg
        .recent_events()
        .iter()
        .map(|e| format!("{} {} {:?}", e.t_ns, e.kind, e.detail))
        .collect();
    CatalogSoakOutcome {
        spec_chaos: spec.chaos,
        published,
        lookups,
        answered,
        failed,
        via_local,
        via_rli,
        via_fallback,
        via_scatter,
        degraded_answers,
        stats,
        final_clock_ns: grid.now().nanos(),
        schedule_debug,
        trace,
        report,
        registry: reg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_soak_without_chaos_answers_everything() {
        let out = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Off));
        assert!(out.converged(), "{:?}", out.report.violations);
        assert!(out.never_wrong());
        assert_eq!(out.failed, 0, "no faults, no honest misses");
        assert_eq!(out.answered, out.lookups);
        assert!(out.via_rli > 0, "warm index should serve hits: {out:?}");
        assert!(out.schedule_debug.is_empty());
    }

    #[test]
    fn empty_schedule_matches_off_exactly() {
        let off = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Off));
        let empty = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::EmptySchedule));
        assert_eq!(off.trace, empty.trace);
        assert_eq!(off.final_clock_ns, empty.final_clock_ns);
        assert_eq!(off.answered, empty.answered);
        assert_eq!(off.stats, empty.stats);
        assert_eq!(
            off.registry.export_json_lines(),
            empty.registry.export_json_lines(),
            "an installed-but-empty schedule must be byte-identical to no schedule"
        );
    }

    #[test]
    fn seeded_catalog_chaos_is_never_wrong_and_deterministic() {
        let a = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0xFEDCA7)));
        let b = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0xFEDCA7)));
        assert!(a.never_wrong(), "wrong answers under seed 0xFEDCA7: {:?}", a.stats);
        assert!(a.converged(), "{:?}", a.report.violations);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.final_clock_ns, b.final_clock_ns);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.registry.export_json_lines(),
            b.registry.export_json_lines(),
            "same seed must replay byte-identically"
        );
    }
}
