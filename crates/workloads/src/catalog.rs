//! Federated-catalog soak: a 100-plus-site grid publishes a file
//! population, then fires Zipf-skewed lookups at the federation while a
//! seeded fault plan crashes RLI nodes, loses soft-state updates, delays
//! catalog answers, and runs the base site/link/partition chaos — and the
//! federation must *never* return a wrong answer. Slower rungs of the
//! degradation ladder are fine; a holder the owning LRC disavows is not.
//!
//! Like [`crate::soak`], the run is a pure function of the spec: same
//! seed → identical trace, final clock, and telemetry export, byte for
//! byte.

use gdmp::invariants::InvariantReport;
use gdmp_replica_catalog::FederationStats;
use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;

use crate::soak::ChaosMode;

/// Parameters of one catalog soak run.
#[derive(Debug, Clone)]
pub struct CatalogSoakSpec {
    /// Number of sites; the acceptance runs use 100+.
    pub sites: usize,
    /// Files published per site (each file lives at exactly one owner
    /// until faults and lookups are done — lookups, not transfers, are
    /// under test here).
    pub files_per_site: usize,
    /// Lookup rounds after the publish phase.
    pub lookup_rounds: usize,
    /// Zipf-sampled lookups per round.
    pub lookups_per_round: usize,
    /// Zipf exponent over the file population (rank 0 hottest).
    pub zipf_alpha: f64,
    /// Size of each published file (kept small: catalog traffic, not
    /// GridFTP throughput, is the workload).
    pub file_size: u64,
    /// Sim time between lookup rounds (also the soft-state cadence the
    /// default [`gdmp_replica_catalog::FederationConfig`] pushes on).
    pub round_gap: SimDuration,
    pub chaos: ChaosMode,
}

impl CatalogSoakSpec {
    /// Sized for CI: two dozen sites, a few rounds — runs in well under a
    /// second.
    pub fn quick(chaos: ChaosMode) -> Self {
        CatalogSoakSpec {
            sites: 24,
            files_per_site: 2,
            lookup_rounds: 4,
            lookups_per_round: 16,
            zipf_alpha: 0.9,
            file_size: 8 * 1024,
            round_gap: SimDuration::from_secs(30),
            chaos,
        }
    }

    /// The acceptance shape: 100+ sites, a multi-tier RLI tree.
    pub fn full(chaos: ChaosMode) -> Self {
        CatalogSoakSpec {
            sites: 108,
            lookup_rounds: 6,
            lookups_per_round: 24,
            ..Self::quick(chaos)
        }
    }
}

/// Everything one catalog soak produced.
#[derive(Debug, Clone)]
pub struct CatalogSoakOutcome {
    pub spec_chaos: ChaosMode,
    /// Files published (sites down at publish time skip their turn).
    pub published: usize,
    /// Lookups attempted / answered with confirmed holders.
    pub lookups: usize,
    pub answered: usize,
    /// Lookups that failed honestly (every reachable LRC denied, or the
    /// ladder ran out of reachable LRCs). Nonzero only under chaos.
    pub failed: usize,
    /// Answers per ladder rung, keyed by [`gdmp::LookupVia::label`] order:
    /// local, rli, fallback, scatter.
    pub via_local: usize,
    pub via_rli: usize,
    pub via_fallback: usize,
    pub via_scatter: usize,
    /// Answers produced while part of the index was dead.
    pub degraded_answers: usize,
    /// The federation's own counters (wrong_answers is the contract).
    pub stats: FederationStats,
    pub final_clock_ns: u64,
    pub schedule_debug: String,
    pub trace: Vec<String>,
    pub report: InvariantReport,
    pub registry: Registry,
}

impl CatalogSoakOutcome {
    pub fn converged(&self) -> bool {
        self.report.is_clean()
    }

    /// The never-wrong contract, directly.
    pub fn never_wrong(&self) -> bool {
        self.stats.wrong_answers == 0
    }
}

pub(crate) fn file_name(f: usize) -> String {
    format!("file{f:04}.dat")
}

/// Run one catalog soak. Deterministic: no wall clocks, no ambient
/// randomness. A thin wrapper over the scenario DSL
/// ([`crate::scenario::Scenario::catalog_soak`]), so a committed
/// `scenarios/` file replays exactly this run.
pub fn run_catalog_soak(spec: &CatalogSoakSpec) -> CatalogSoakOutcome {
    crate::scenario::run_catalog_scenario(&crate::scenario::Scenario::catalog_soak(spec))
        .expect("builtin catalog scenario is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_soak_without_chaos_answers_everything() {
        let out = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Off));
        assert!(out.converged(), "{:?}", out.report.violations);
        assert!(out.never_wrong());
        assert_eq!(out.failed, 0, "no faults, no honest misses");
        assert_eq!(out.answered, out.lookups);
        assert!(out.via_rli > 0, "warm index should serve hits: {out:?}");
        assert!(out.schedule_debug.is_empty());
    }

    #[test]
    fn empty_schedule_matches_off_exactly() {
        let off = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Off));
        let empty = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::EmptySchedule));
        assert_eq!(off.trace, empty.trace);
        assert_eq!(off.final_clock_ns, empty.final_clock_ns);
        assert_eq!(off.answered, empty.answered);
        assert_eq!(off.stats, empty.stats);
        assert_eq!(
            off.registry.export_json_lines(),
            empty.registry.export_json_lines(),
            "an installed-but-empty schedule must be byte-identical to no schedule"
        );
    }

    #[test]
    fn seeded_catalog_chaos_is_never_wrong_and_deterministic() {
        let a = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0xFEDCA7)));
        let b = run_catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0xFEDCA7)));
        assert!(a.never_wrong(), "wrong answers under seed 0xFEDCA7: {:?}", a.stats);
        assert!(a.converged(), "{:?}", a.report.violations);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.final_clock_ns, b.final_clock_ns);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.registry.export_json_lines(),
            b.registry.export_json_lines(),
            "same seed must replay byte-identically"
        );
    }
}
