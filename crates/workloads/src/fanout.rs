//! Fan-out replication scenario: one network, many independent site pairs.
//!
//! The paper's data grid pushes files from CERN outward to many regional
//! centres at once; each CERN→site path has its own bottleneck link and its
//! own cross traffic, and the paths do not share queues. That topology is
//! the best case for the sharded simnet engine — the partitioner finds one
//! flow-interaction group per site pair — so this module doubles as the
//! scaling scenario for `bench_simnet` and as a determinism fixture: the
//! outcome must be byte-identical for any worker count.
//!
//! Rates, delays, and staggers are deliberately irregular across sites
//! (derived from the site index) so no two sites run in lock-step and the
//! event mix is realistic rather than K copies of one schedule.

use gdmp_simnet::link::LinkSpec;
use gdmp_simnet::network::{FastForward, FlowResult, FlowSpec, Network, NetworkConfig};
use gdmp_simnet::time::{SimDuration, SimTime};
use gdmp_telemetry::Registry;

/// One fan-out run: `sites` independent CERN→regional-centre pairs.
#[derive(Debug, Clone, Copy)]
pub struct FanoutSpec {
    /// Destination sites (= independent bottleneck links).
    pub sites: u32,
    /// Parallel streams per site transfer.
    pub streams: u32,
    /// Bytes pushed to each site.
    pub bytes_per_site: u64,
    /// Socket buffer per stream.
    pub buffer: u64,
    /// Background flows per site path.
    pub background: u32,
    /// Fidelity mode; scaling measurements use [`FastForward::Off`] so the
    /// event count is the full packet-level load.
    pub fast_forward: FastForward,
    /// Event-loop worker threads (see `NetworkConfig::workers`).
    pub workers: usize,
}

impl FanoutSpec {
    /// The scenario used by `bench_simnet`'s workers sweep: 8 site pairs,
    /// every packet simulated.
    pub fn bench_default() -> FanoutSpec {
        FanoutSpec {
            sites: 8,
            streams: 2,
            bytes_per_site: 3 * 1024 * 1024,
            buffer: 256 * 1024,
            background: 1,
            fast_forward: FastForward::Off,
            workers: 1,
        }
    }

    pub fn with_workers(mut self, workers: usize) -> FanoutSpec {
        self.workers = workers.max(1);
        self
    }
}

/// Everything observable from one fan-out run, comparable with `==` across
/// worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FanoutOutcome {
    pub flows: Vec<FlowResult>,
    pub events_processed: u64,
    pub events_skipped: u64,
    /// Sorted telemetry counters `(name{labels}, value)`.
    pub counters: Vec<(String, u64)>,
}

/// Per-site link: rates from 8 to ~22 Mb/s, one-way delays from 18 to
/// ~60 ms, stepped by site index so every pair beats at its own frequency.
fn site_link(site: u32) -> LinkSpec {
    LinkSpec {
        rate_bps: 8_000_000 + 2_000_000 * u64::from(site % 8),
        propagation: SimDuration::from_millis(18 + 6 * u64::from(site % 8)),
        queue_capacity: 96 + 16 * (site as usize % 4),
    }
}

/// Run the fan-out and capture every observable output.
pub fn run_fanout(spec: &FanoutSpec) -> FanoutOutcome {
    let reg = Registry::new();
    let mut net = Network::new(
        NetworkConfig::default().with_fast_forward(spec.fast_forward).with_workers(spec.workers),
    );
    net.set_telemetry(reg.clone());
    for site in 0..spec.sites {
        let link = net.add_link(site_link(site));
        // Stagger opens per site and per stream with site-dependent strides
        // so no two transfers phase-lock.
        let site_open = SimTime(u64::from(site) * 13_700_000);
        for s in 0..spec.streams {
            let per = spec.bytes_per_site / u64::from(spec.streams);
            let sz = if s == spec.streams - 1 {
                spec.bytes_per_site - per * u64::from(spec.streams - 1)
            } else {
                per
            };
            net.add_flow(
                FlowSpec::transfer(sz, spec.buffer)
                    .on_link(link)
                    .open_at(site_open + SimDuration::from_millis(7 * u64::from(s))),
            );
        }
        for b in 0..spec.background {
            net.add_flow(
                FlowSpec::background(64 * 1024)
                    .on_link(link)
                    .open_at(site_open + SimDuration::from_millis(3 + 11 * u64::from(b))),
            );
        }
    }
    let flows = net.run();
    let mut counters: Vec<(String, u64)> = reg
        .metrics_snapshot()
        .iter()
        .filter_map(|(name, labels, v)| match v {
            gdmp_telemetry::MetricValue::Counter(c) => Some((format!("{name}{labels}"), *c)),
            _ => None,
        })
        .collect();
    counters.sort();
    FanoutOutcome {
        flows,
        events_processed: net.events_processed(),
        events_skipped: net.events_skipped(),
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_completes_every_site() {
        let spec = FanoutSpec { sites: 3, ..FanoutSpec::bench_default() };
        let out = run_fanout(&spec);
        let finished =
            out.flows.iter().filter(|f| f.spec.bytes.is_some() && f.finished.is_some()).count();
        assert_eq!(finished, 3 * spec.streams as usize);
        assert!(out.events_processed > 0);
    }

    #[test]
    fn fanout_identical_for_any_worker_count() {
        let base = FanoutSpec { sites: 5, ..FanoutSpec::bench_default() };
        let one = run_fanout(&base.with_workers(1));
        for workers in [2, 4] {
            let par = run_fanout(&base.with_workers(workers));
            assert_eq!(one, par, "fan-out outcome diverged at {workers} workers");
        }
    }
}
