//! The multi-source fetch scenario: one hot file, three replicas behind
//! asymmetric WAN paths, one consumer. Shared by `figures fetch`, the
//! `bench_fetch` report, the CI fetch smoke, and the integration tests,
//! so they all measure exactly the same grid.
//!
//! Topology (all paths uncontended, rates deliberately asymmetric):
//!
//! ```text
//!   cern  --- 20 Mb/s, 40 ms RTT --->+
//!   fnal  --- 12 Mb/s, 70 ms RTT --->+--> lyon
//!   kek   ---  8 Mb/s, 120 ms RTT -->+
//! ```
//!
//! A single-source fetch is bounded by the best path (20 Mb/s); a striped
//! fetch can draw on the aggregate (~40 Mb/s). With
//! [`FetchSpec::crash_fastest`] the best source dies three sim-seconds
//! into the measured fetch, exercising mid-transfer range reassignment
//! (multi-source) or salvage-and-failover (single-source).

use gdmp::prelude::*;

/// The replicated hot file.
pub const FETCH_LFN: &str = "hot_aod.dat";
/// The consumer site.
pub const FETCH_DST: &str = "lyon";
/// Source sites, fastest path first.
pub const FETCH_SOURCES: [&str; 3] = ["cern", "fnal", "kek"];

/// The measured fetch starts at exactly this sim time; replica seeding
/// happens before it, faults are scheduled relative to it.
pub fn fetch_t0() -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(1_000)
}

/// The striped policy the scenario measures. A 2 MB chunk quantum keeps
/// the per-source queues balanceable (fine-grained work stealing) while
/// staying cheap: only the first chunk per source pays session setup and
/// TCP slow-start — later chunks ride the warm data channels.
pub fn striped_policy() -> FetchPolicy {
    FetchPolicy::MultiSource { max_sources: 3, min_chunk: 2 * crate::MB }
}

/// One fetch experiment.
#[derive(Debug, Clone)]
pub struct FetchSpec {
    /// Bytes of the hot file.
    pub size: u64,
    /// The policy under test.
    pub policy: FetchPolicy,
    /// Crash the fastest source 3 s into the measured fetch (it restarts
    /// 600 s later; the run is then driven to convergence).
    pub crash_fastest: bool,
    /// Jitter seed for the retry strategy.
    pub seed: u64,
}

impl Default for FetchSpec {
    fn default() -> Self {
        FetchSpec {
            size: 48 * crate::MB,
            policy: FetchPolicy::SingleSource,
            crash_fastest: false,
            seed: 0xFE7C,
        }
    }
}

/// Everything one fetch run produced.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    pub spec: FetchSpec,
    /// The measured replication report for the hot file.
    pub report: ReplicationReport,
    /// Wall (sim) time of the measured fetch.
    pub elapsed: SimDuration,
    /// Aggregate goodput of the measured fetch, Mb/s.
    pub agg_mbps: f64,
    /// Bytes credited per source, `(site, bytes)`, every source listed.
    pub per_source_bytes: Vec<(String, u64)>,
    /// Ranges moved between sources (reassignments + work steals).
    pub ranges_reassigned: u64,
    /// Plan rebuilds forced by source deaths.
    pub plan_rebuilds: u64,
    /// Invariant sweep after the run was driven to convergence.
    pub converged: bool,
    /// The run's telemetry registry, for deeper assertions.
    pub registry: Registry,
}

/// Run one fetch experiment. Deterministic: no wall clocks, no ambient
/// randomness; same spec ⇒ identical outcome. A thin wrapper over the
/// scenario DSL: the grid, faults, and workload come from
/// [`crate::scenario::Scenario::fetch`], so a committed `scenarios/`
/// file replays exactly this run.
pub fn run_fetch(spec: &FetchSpec) -> FetchOutcome {
    crate::scenario::run_fetch_scenario(&crate::scenario::Scenario::fetch(spec))
        .expect("builtin fetch scenario is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_source_beats_single_source_on_asymmetric_paths() {
        let single = run_fetch(&FetchSpec::default());
        let multi = run_fetch(&FetchSpec { policy: striped_policy(), ..FetchSpec::default() });
        assert!(single.converged && multi.converged);
        let speedup = multi.agg_mbps / single.agg_mbps;
        assert!(
            speedup >= 1.5,
            "striping must aggregate asymmetric paths: {:.1} vs {:.1} Mb/s ({speedup:.2}x)",
            multi.agg_mbps,
            single.agg_mbps
        );
        // Every source contributed in the striped run.
        assert!(multi.per_source_bytes.iter().all(|(_, b)| *b > 0), "{:?}", multi.per_source_bytes);
    }

    #[test]
    fn crashed_source_reassigns_ranges_and_converges() {
        let out = run_fetch(&FetchSpec {
            policy: striped_policy(),
            crash_fastest: true,
            ..FetchSpec::default()
        });
        assert!(out.converged, "grid must converge after the crash heals");
        assert!(out.plan_rebuilds >= 1, "the crash must force a plan rebuild");
        assert!(out.ranges_reassigned >= 1, "the dead source's ranges must move");
        let cern = out.per_source_bytes.iter().find(|(s, _)| s == "cern").unwrap().1;
        assert!(cern < out.spec.size, "the crashed source cannot have delivered everything");
    }

    #[test]
    fn fetch_runs_are_deterministic() {
        let spec =
            FetchSpec { policy: striped_policy(), crash_fastest: true, ..FetchSpec::default() };
        let a = run_fetch(&spec);
        let b = run_fetch(&spec);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.per_source_bytes, b.per_source_bytes);
        assert_eq!(a.ranges_reassigned, b.ranges_reassigned);
        assert_eq!(a.registry.export_json_lines(), b.registry.export_json_lines());
    }
}
