//! Grid-level time-series sampling: level gauges that only the workload
//! driver can see (they need a sweep over every site), recorded against
//! the grid's sim clock. A no-op unless the registry has time-series
//! enabled, so callers sprinkle samples freely.

use gdmp::Grid;
use gdmp_telemetry::Registry;

/// Sample the per-site tape staging backlog (files archived on tape but
/// not disk-resident) and the grid-wide replica disk-hit rate (per mille
/// of HRM requests served from the disk pool) into `reg`'s time-series.
pub fn sample_grid_series(grid: &Grid, reg: &Registry) {
    let now_ns = grid.now().nanos();
    let mut names = grid.site_names();
    names.sort();
    for name in &names {
        let site = grid.site(name).expect("listed site exists");
        let backlog = site.storage.stage_backlog() as i64;
        reg.series_set("tape_stage_backlog", &[("site", name)], now_ns, backlog);
    }
    let disk = reg.counter_value("hrm_requests", &[("residence", "disk")]);
    let tape = reg.counter_value("hrm_requests", &[("residence", "tape")]);
    if let Some(hit_rate) = (disk * 1000).checked_div(disk + tape) {
        reg.series_set("replica_disk_hit_pm", &[], now_ns, hit_rate as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp::SiteConfig;
    use gdmp_simnet::time::SimDuration;

    #[test]
    fn sampling_is_inert_until_timeseries_enabled() {
        let mut g = Grid::new("obs");
        g.add_site(SiteConfig::named("cern", "cern.ch", 1));
        let reg = Registry::new();
        sample_grid_series(&g, &reg);
        assert!(reg.timeseries_snapshot().is_empty());

        reg.enable_timeseries(SimDuration::from_secs(1).nanos());
        sample_grid_series(&g, &reg);
        let series = reg.timeseries_snapshot();
        assert!(series.iter().any(|s| s.name == "tape_stage_backlog"));
    }
}
