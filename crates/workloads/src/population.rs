//! Event-store population: filling a site's federation with event objects
//! under a chosen object→file placement policy.
//!
//! Section 5.1: "a smart initial placement of similar objects together in
//! the same files can raise the probability [that whole files match a
//! selection], but not by very much." The placement policies let the
//! benches quantify exactly that.

use gdmp::{Grid, Result};
use gdmp_objectstore::{standard_assocs, synth_payload, LogicalOid, ObjectKind, StoredObject};

/// How objects are clustered into database files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One kind per file, consecutive event ranges (the natural layout of
    /// production: files of N raw events, files of N ESD events, ...).
    ByKindChunks { events_per_file: u64 },
    /// All kinds of an event range together in one file.
    MixedEvents { events_per_file: u64 },
    /// Events striped across files (worst case for selections with event
    /// locality): event e of kind k goes to file `e % files`.
    Striped { files: u64 },
}

/// Scale factor for object sizes (1.0 = the paper's nominal tiers; benches
/// usually run at 0.01–0.1 to stay in memory).
#[derive(Debug, Clone, Copy)]
pub struct Population {
    pub events: u64,
    pub kinds: &'static [ObjectKind],
    pub placement: Placement,
    pub size_scale: f64,
}

impl Population {
    /// AOD-only population, the common Section 5 scenario.
    pub fn aod(events: u64, events_per_file: u64) -> Self {
        const KINDS: &[ObjectKind] = &[ObjectKind::Aod];
        Population {
            events,
            kinds: KINDS,
            placement: Placement::ByKindChunks { events_per_file },
            size_scale: 1.0,
        }
    }

    pub fn scaled(mut self, scale: f64) -> Self {
        self.size_scale = scale;
        self
    }

    fn object_size(&self, kind: ObjectKind) -> usize {
        ((kind.nominal_size() as f64 * self.size_scale) as usize).max(16)
    }

    fn object(&self, event: u64, kind: ObjectKind) -> StoredObject {
        let logical = LogicalOid::new(event, kind);
        StoredObject {
            logical,
            version: 1,
            payload: synth_payload(logical, 1, self.object_size(kind)),
            assocs: standard_assocs(logical),
        }
    }

    /// Which file (name) an object belongs to under the placement policy.
    pub fn file_for(&self, event: u64, kind: ObjectKind) -> String {
        match self.placement {
            Placement::ByKindChunks { events_per_file } => {
                format!("{}.{:05}.db", kind.name(), event / events_per_file)
            }
            Placement::MixedEvents { events_per_file } => {
                format!("events.{:05}.db", event / events_per_file)
            }
            Placement::Striped { files } => format!("stripe.{:05}.db", event % files),
        }
    }

    /// Materialize the population in `site`'s federation and publish every
    /// file to the grid. Returns the published file names.
    pub fn build(&self, grid: &mut Grid, site: &str) -> Result<Vec<String>> {
        let mut files = Vec::new();
        {
            let fed = &mut grid.site_mut(site)?.federation;
            for &kind in self.kinds {
                for event in 0..self.events {
                    let file = self.file_for(event, kind);
                    if !fed.is_attached(&file) {
                        fed.create_database(&file)?;
                        files.push(file.clone());
                    }
                    fed.store(&file, 0, self.object(event, kind))?;
                }
            }
        }
        for f in &files {
            grid.publish_database(site, f)?;
        }
        // Sample the post-publication storage state (staging backlog, hit
        // rate) into any enabled time-series.
        let reg = grid.telemetry().clone();
        crate::observe::sample_grid_series(grid, &reg);
        Ok(files)
    }

    /// Total payload bytes of the population.
    pub fn total_bytes(&self) -> u64 {
        self.kinds.iter().map(|&k| self.events * self.object_size(k) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdmp::SiteConfig;

    fn grid() -> Grid {
        let mut g = Grid::new("cms");
        g.add_site(SiteConfig::named("cern", "cern.ch", 1));
        g.add_site(SiteConfig::named("anl", "anl.gov", 2));
        g.trust_all();
        g
    }

    #[test]
    fn by_kind_chunks_groups_ranges() {
        let p = Population::aod(100, 25).scaled(0.01);
        assert_eq!(p.file_for(0, ObjectKind::Aod), "aod.00000.db");
        assert_eq!(p.file_for(24, ObjectKind::Aod), "aod.00000.db");
        assert_eq!(p.file_for(25, ObjectKind::Aod), "aod.00001.db");
        assert_eq!(p.file_for(99, ObjectKind::Aod), "aod.00003.db");
    }

    #[test]
    fn striped_spreads_neighbours() {
        let p = Population {
            events: 100,
            kinds: &[ObjectKind::Aod],
            placement: Placement::Striped { files: 7 },
            size_scale: 0.01,
        };
        assert_ne!(p.file_for(0, ObjectKind::Aod), p.file_for(1, ObjectKind::Aod));
        assert_eq!(p.file_for(0, ObjectKind::Aod), p.file_for(7, ObjectKind::Aod));
    }

    #[test]
    fn build_publishes_everything() {
        let mut g = grid();
        let p = Population::aod(100, 25).scaled(0.01);
        let files = p.build(&mut g, "cern").unwrap();
        assert_eq!(files.len(), 4);
        for f in &files {
            assert_eq!(g.catalog.locate(f).unwrap().len(), 1);
            assert!(g.site("cern").unwrap().federation.is_attached(f));
        }
        // Every object is resolvable through the global view.
        assert_eq!(g.object_view.object_count(), 100);
    }

    #[test]
    fn mixed_placement_couples_kinds_per_file() {
        const KINDS: &[ObjectKind] = &[ObjectKind::Aod, ObjectKind::Esd];
        let p = Population {
            events: 10,
            kinds: KINDS,
            placement: Placement::MixedEvents { events_per_file: 5 },
            size_scale: 0.001,
        };
        let mut g = grid();
        let files = p.build(&mut g, "cern").unwrap();
        assert_eq!(files.len(), 2);
        // File 0 holds both the AOD and ESD of event 0 → navigation works
        // locally.
        let fed = &mut g.site_mut("cern").unwrap().federation;
        let esd = fed.navigate(LogicalOid::new(0, ObjectKind::Aod), "esd").unwrap();
        assert_eq!(esd.logical.kind, ObjectKind::Esd);
    }

    #[test]
    fn total_bytes_scales() {
        let p = Population::aod(1000, 100);
        let scaled = Population::aod(1000, 100).scaled(0.1);
        assert!(p.total_bytes() > 9 * scaled.total_bytes());
    }
}
