//! Seeded chaos soak: a small grid publishing and replicating while a
//! deterministic fault schedule crashes sites, cuts links, and splits the
//! network — then everything heals, the queues drain, and the invariants
//! of `gdmp::invariants` must hold.
//!
//! The whole run is a pure function of [`SoakSpec`]: same spec (and seed)
//! → identical event trace, identical final clock, identical metrics. A
//! failing run therefore prints its seed, and replaying that seed
//! reproduces the failure byte for byte.

use gdmp::invariants::InvariantReport;
use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;

/// How much chaos the soak injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// No schedule installed at all — the pre-chaos code path.
    Off,
    /// An empty schedule installed: must behave identically to
    /// [`ChaosMode::Off`] (the inertness contract).
    EmptySchedule,
    /// A full [`gdmp::ChaosPlan`] derived from this seed.
    Seeded(u64),
}

/// Parameters of one soak run.
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Number of sites, full-mesh subscribed (the issue asks for 4–6).
    pub sites: usize,
    /// Publish rounds before the drain phase.
    pub rounds: usize,
    /// Size of each published file.
    pub file_size: u64,
    /// Sim time between publish and drain steps within a round.
    pub round_gap: SimDuration,
    /// Max drain iterations after the fault horizon before giving up.
    pub drain_rounds: usize,
    pub chaos: ChaosMode,
    /// Event-loop worker threads for every simulated transfer (see
    /// `NetworkConfig::workers`); the soak outcome is identical for any
    /// value — asserted by the determinism tests.
    pub workers: usize,
}

impl SoakSpec {
    /// A soak sized for CI: 5 sites, 4 rounds, 64 KB files.
    pub fn quick(chaos: ChaosMode) -> Self {
        SoakSpec {
            sites: 5,
            rounds: 4,
            file_size: 64 * 1024,
            round_gap: SimDuration::from_secs(30),
            drain_rounds: 20,
            chaos,
            workers: 1,
        }
    }

    /// Run every simulated transfer on up to `workers` engine threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Everything a soak run produced, sufficient for convergence assertions
/// and same-seed determinism comparisons.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    pub spec_chaos: ChaosMode,
    /// Files published across all rounds.
    pub published: usize,
    /// Replication reports completed (including retried/deferred ones).
    pub replicated: usize,
    /// Final sim clock in nanoseconds.
    pub final_clock_ns: u64,
    /// Debug rendering of the installed fault schedule (empty for
    /// [`ChaosMode::Off`]).
    pub schedule_debug: String,
    /// Deterministic event trace: flight-recorder events as
    /// `t_ns kind detail` lines.
    pub trace: Vec<String>,
    /// The invariant sweep over the final grid state.
    pub report: InvariantReport,
    /// The run's telemetry registry (counters for retries, backoff waits,
    /// breaker trips, replayed notices, resync repairs, ...).
    pub registry: Registry,
}

impl SoakOutcome {
    pub fn converged(&self) -> bool {
        self.report.is_clean()
    }
}

/// Run one soak. Deterministic: no wall clocks, no ambient randomness. A
/// thin wrapper over the scenario DSL
/// ([`crate::scenario::Scenario::replication_soak`]), so a committed
/// `scenarios/` file replays exactly this run.
pub fn run_soak(spec: &SoakSpec) -> SoakOutcome {
    crate::scenario::run_soak_scenario(&crate::scenario::Scenario::replication_soak(spec))
        .expect("builtin soak scenario is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_without_chaos_converges() {
        let out = run_soak(&SoakSpec::quick(ChaosMode::Off));
        assert!(out.converged(), "{:?}", out.report.violations);
        assert!(out.published > 0);
        assert!(out.replicated >= out.published * 2, "full mesh fan-out");
        assert!(out.schedule_debug.is_empty());
    }

    #[test]
    fn seeded_chaos_identical_across_workers() {
        let one = run_soak(&SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE)));
        let par = run_soak(&SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE)).with_workers(2));
        assert_eq!(one.trace, par.trace);
        assert_eq!(one.final_clock_ns, par.final_clock_ns);
        assert_eq!(one.published, par.published);
        assert_eq!(one.replicated, par.replicated);
        assert_eq!(
            one.registry.export_json_lines(),
            par.registry.export_json_lines(),
            "a seeded chaos soak must be byte-identical on 2 engine workers"
        );
    }

    #[test]
    fn empty_schedule_matches_off_exactly() {
        let off = run_soak(&SoakSpec::quick(ChaosMode::Off));
        let empty = run_soak(&SoakSpec::quick(ChaosMode::EmptySchedule));
        assert_eq!(off.trace, empty.trace);
        assert_eq!(off.final_clock_ns, empty.final_clock_ns);
        assert_eq!(off.published, empty.published);
        assert_eq!(off.replicated, empty.replicated);
        assert_eq!(
            off.registry.export_json_lines(),
            empty.registry.export_json_lines(),
            "an installed-but-empty schedule must be byte-identical to no schedule"
        );
    }
}
