//! Seeded chaos soak: a small grid publishing and replicating while a
//! deterministic fault schedule crashes sites, cuts links, and splits the
//! network — then everything heals, the queues drain, and the invariants
//! of `gdmp::invariants` must hold.
//!
//! The whole run is a pure function of [`SoakSpec`]: same spec (and seed)
//! → identical event trace, identical final clock, identical metrics. A
//! failing run therefore prints its seed, and replaying that seed
//! reproduces the failure byte for byte.

use bytes::Bytes;
use gdmp::chaos::ChaosPlan;
use gdmp::invariants::{check_grid, InvariantReport};
use gdmp::prelude::WanProfile;
use gdmp::{BackoffRetry, BreakerConfig, FaultSchedule, Grid, SiteConfig};
use gdmp_simnet::time::SimDuration;
use gdmp_telemetry::Registry;

/// How much chaos the soak injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// No schedule installed at all — the pre-chaos code path.
    Off,
    /// An empty schedule installed: must behave identically to
    /// [`ChaosMode::Off`] (the inertness contract).
    EmptySchedule,
    /// A full [`ChaosPlan`] derived from this seed.
    Seeded(u64),
}

/// Parameters of one soak run.
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Number of sites, full-mesh subscribed (the issue asks for 4–6).
    pub sites: usize,
    /// Publish rounds before the drain phase.
    pub rounds: usize,
    /// Size of each published file.
    pub file_size: u64,
    /// Sim time between publish and drain steps within a round.
    pub round_gap: SimDuration,
    /// Max drain iterations after the fault horizon before giving up.
    pub drain_rounds: usize,
    pub chaos: ChaosMode,
    /// Event-loop worker threads for every simulated transfer (see
    /// `NetworkConfig::workers`); the soak outcome is identical for any
    /// value — asserted by the determinism tests.
    pub workers: usize,
}

impl SoakSpec {
    /// A soak sized for CI: 5 sites, 4 rounds, 64 KB files.
    pub fn quick(chaos: ChaosMode) -> Self {
        SoakSpec {
            sites: 5,
            rounds: 4,
            file_size: 64 * 1024,
            round_gap: SimDuration::from_secs(30),
            drain_rounds: 20,
            chaos,
            workers: 1,
        }
    }

    /// Run every simulated transfer on up to `workers` engine threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Everything a soak run produced, sufficient for convergence assertions
/// and same-seed determinism comparisons.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    pub spec_chaos: ChaosMode,
    /// Files published across all rounds.
    pub published: usize,
    /// Replication reports completed (including retried/deferred ones).
    pub replicated: usize,
    /// Final sim clock in nanoseconds.
    pub final_clock_ns: u64,
    /// Debug rendering of the installed fault schedule (empty for
    /// [`ChaosMode::Off`]).
    pub schedule_debug: String,
    /// Deterministic event trace: flight-recorder events as
    /// `t_ns kind detail` lines.
    pub trace: Vec<String>,
    /// The invariant sweep over the final grid state.
    pub report: InvariantReport,
    /// The run's telemetry registry (counters for retries, backoff waits,
    /// breaker trips, replayed notices, resync repairs, ...).
    pub registry: Registry,
}

impl SoakOutcome {
    pub fn converged(&self) -> bool {
        self.report.is_clean()
    }
}

fn site_name(i: usize) -> String {
    format!("site{i}")
}

/// Run one soak. Deterministic: no wall clocks, no ambient randomness.
pub fn run_soak(spec: &SoakSpec) -> SoakOutcome {
    let names: Vec<String> = (0..spec.sites).map(site_name).collect();
    let reg = Registry::with_recorder_capacity(8192);
    // Coarse sim-time series over the whole soak: staging backlog and
    // disk-hit rate per round (the round gap is 30 s, so 30 s buckets).
    reg.enable_timeseries(SimDuration::from_secs(30).nanos());
    // Retry hygiene under test: backoff with deterministic jitter plus a
    // per-source circuit breaker.
    let jitter_seed = match spec.chaos {
        ChaosMode::Seeded(s) => s,
        _ => 0,
    };
    let mut builder = Grid::builder("soak")
        .telemetry_sink(reg.clone())
        .default_profile(WanProfile::cern_anl_production().with_workers(spec.workers))
        .recovery(Box::new(BackoffRetry::new(jitter_seed)))
        .breaker(BreakerConfig::default());
    for (i, name) in names.iter().enumerate() {
        builder = builder.site(SiteConfig::named(name, &format!("{name}.grid"), 100 + i as u64));
    }
    builder = builder.trust_all();
    // Full mesh: everyone consumes everyone else's publications. Build-time
    // subscriptions run before the fault schedule is installed, so the
    // mesh is symmetric before any fault can fire.
    for a in &names {
        for b in &names {
            if a != b {
                builder = builder.subscription(a, b);
            }
        }
    }
    let mut schedule_debug = String::new();
    builder = match spec.chaos {
        ChaosMode::Off => builder,
        ChaosMode::EmptySchedule => builder.fault_schedule(FaultSchedule::new()),
        ChaosMode::Seeded(seed) => {
            let schedule = ChaosPlan::new(seed, &names).schedule();
            schedule_debug = format!("{schedule}");
            builder.fault_schedule(schedule)
        }
    };
    let mut grid = builder.build();
    let horizon = grid.chaos_state().schedule().horizon();

    let mut published = 0usize;
    let mut replicated = 0usize;
    for round in 0..spec.rounds {
        for (i, name) in names.iter().enumerate() {
            // Alternate publishers each round; a crashed GDMP server
            // publishes nothing.
            if (round + i) % 2 != 0 || grid.chaos_state().is_down(name) {
                continue;
            }
            let lfn = format!("{name}_r{round}.dat");
            let fill = ((i + round) % 251) as u8;
            let data = Bytes::from(vec![fill; spec.file_size as usize]);
            grid.publish_file(name, &lfn, data, "flat").expect("publish on a live site");
            published += 1;
        }
        grid.advance(spec.round_gap);
        for name in &names {
            if grid.chaos_state().is_down(name) {
                continue;
            }
            let reports = grid.replicate_pending(name).expect("only retryable failures deferred");
            replicated += reports.len();
        }
        crate::observe::sample_grid_series(&grid, &reg);
        grid.advance(spec.round_gap);
    }

    // Let every scheduled fault fire and heal.
    let now = grid.now();
    if horizon > now {
        grid.advance(horizon - now + SimDuration::from_secs(1));
    }

    // Drain: replay journals, resync restarted sites, retry deferred
    // replications until the grid is quiescent (or the budget runs out).
    for _ in 0..spec.drain_rounds {
        grid.run_recovery();
        for name in &names {
            let reports = grid.replicate_pending(name).expect("only retryable failures deferred");
            replicated += reports.len();
        }
        grid.advance(SimDuration::from_secs(30));
        crate::observe::sample_grid_series(&grid, &reg);
        let quiescent = grid.chaos_state().pending_restarts() == 0
            && names.iter().all(|n| {
                let s = grid.site(n).expect("site exists");
                s.import_queue.is_empty() && s.journal.is_empty()
            });
        if quiescent {
            break;
        }
    }

    let report = check_grid(&mut grid);
    let trace = reg
        .recent_events()
        .iter()
        .map(|e| format!("{} {} {:?}", e.t_ns, e.kind, e.detail))
        .collect();
    SoakOutcome {
        spec_chaos: spec.chaos,
        published,
        replicated,
        final_clock_ns: grid.now().nanos(),
        schedule_debug,
        trace,
        report,
        registry: reg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_without_chaos_converges() {
        let out = run_soak(&SoakSpec::quick(ChaosMode::Off));
        assert!(out.converged(), "{:?}", out.report.violations);
        assert!(out.published > 0);
        assert!(out.replicated >= out.published * 2, "full mesh fan-out");
        assert!(out.schedule_debug.is_empty());
    }

    #[test]
    fn seeded_chaos_identical_across_workers() {
        let one = run_soak(&SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE)));
        let par = run_soak(&SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE)).with_workers(2));
        assert_eq!(one.trace, par.trace);
        assert_eq!(one.final_clock_ns, par.final_clock_ns);
        assert_eq!(one.published, par.published);
        assert_eq!(one.replicated, par.replicated);
        assert_eq!(
            one.registry.export_json_lines(),
            par.registry.export_json_lines(),
            "a seeded chaos soak must be byte-identical on 2 engine workers"
        );
    }

    #[test]
    fn empty_schedule_matches_off_exactly() {
        let off = run_soak(&SoakSpec::quick(ChaosMode::Off));
        let empty = run_soak(&SoakSpec::quick(ChaosMode::EmptySchedule));
        assert_eq!(off.trace, empty.trace);
        assert_eq!(off.final_clock_ns, empty.final_clock_ns);
        assert_eq!(off.published, empty.published);
        assert_eq!(off.replicated, empty.replicated);
        assert_eq!(
            off.registry.export_json_lines(),
            empty.registry.export_json_lines(),
            "an installed-but-empty schedule must be byte-identical to no schedule"
        );
    }
}
