//! Canonical serialization of a [`Scenario`] to the shim's [`Value`]
//! tree. Field order here is the schema's declaration order, optional
//! fields are omitted when unset, and parsing the output reproduces the
//! scenario exactly (the round-trip contract the tests pin).

use serde::Value;

use super::{
    Control, EdgeDecl, EventDecl, Faults, Links, PolicyDecl, ProfileDecl, Scenario, SiteDecl,
    StorageDecl, TelemetryDecl, TieredLinks, Topology, WorkloadDecl,
};

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

fn u(n: u64) -> Value {
    Value::UInt(n)
}

pub(super) fn scenario(sc: &Scenario) -> Value {
    obj(vec![
        ("name", s(&sc.name)),
        ("seed", u(sc.seed)),
        ("topology", topology(&sc.topology)),
        ("links", links(&sc.links)),
        ("control", control(&sc.control)),
        ("telemetry", telemetry(&sc.telemetry)),
        ("faults", faults(&sc.faults)),
        ("workload", workload(&sc.workload)),
    ])
}

fn topology(t: &Topology) -> Value {
    match t {
        Topology::Explicit { sites } => obj(vec![
            ("kind", s("explicit")),
            ("sites", Value::Array(sites.iter().map(site).collect())),
        ]),
        Topology::Flat { count, prefix, pad, key_seed_base, storage } => obj(vec![
            ("kind", s("flat")),
            ("count", u(*count as u64)),
            ("prefix", s(prefix)),
            ("pad", u(*pad as u64)),
            ("key_seed_base", u(*key_seed_base)),
            ("storage", storage_decl(storage)),
        ]),
        Topology::Tiered { tier1, tier2_per_tier1, key_seed_base, storage } => obj(vec![
            ("kind", s("tiered")),
            ("tier1", u(*tier1 as u64)),
            ("tier2_per_tier1", u(*tier2_per_tier1 as u64)),
            ("key_seed_base", u(*key_seed_base)),
            ("storage", storage_decl(storage)),
        ]),
    }
}

fn site(decl: &SiteDecl) -> Value {
    let mut fields =
        vec![("name", s(&decl.name)), ("org", s(&decl.org)), ("key_seed", u(decl.key_seed))];
    if let Some(pool) = decl.pool_capacity {
        fields.push(("pool_capacity", u(pool)));
    }
    fields.push(("storage", storage_decl(&decl.storage)));
    obj(fields)
}

fn storage_decl(decl: &StorageDecl) -> Value {
    match *decl {
        StorageDecl::ClassicTape => obj(vec![("kind", s("classic_tape"))]),
        StorageDecl::Tape {
            mount_ms,
            seek_bytes_per_sec,
            stream_bytes_per_sec,
            drives,
            tape_capacity,
        } => obj(vec![
            ("kind", s("tape")),
            ("mount_ms", u(mount_ms)),
            ("seek_bytes_per_sec", u(seek_bytes_per_sec)),
            ("stream_bytes_per_sec", u(stream_bytes_per_sec)),
            ("drives", u(drives as u64)),
            ("tape_capacity", u(tape_capacity)),
        ]),
        StorageDecl::DiskArray { capacity, op_latency_us, stream_bytes_per_sec } => obj(vec![
            ("kind", s("disk_array")),
            ("capacity", u(capacity)),
            ("op_latency_us", u(op_latency_us)),
            ("stream_bytes_per_sec", u(stream_bytes_per_sec)),
        ]),
        StorageDecl::ObjectStore {
            rtt_us,
            stream_bytes_per_sec,
            cost_per_request,
            cost_per_mib,
        } => obj(vec![
            ("kind", s("object_store")),
            ("rtt_us", u(rtt_us)),
            ("stream_bytes_per_sec", u(stream_bytes_per_sec)),
            ("cost_per_request", u(cost_per_request)),
            ("cost_per_mib", u(cost_per_mib)),
        ]),
    }
}

fn links(l: &Links) -> Value {
    let mut fields = vec![
        ("default", profile(&l.default)),
        ("workers", u(l.workers as u64)),
        ("edges", Value::Array(l.edges.iter().map(edge).collect())),
    ];
    if let Some(t) = &l.tiered {
        fields.push(("tiered", tiered(t)));
    }
    obj(fields)
}

fn edge(e: &EdgeDecl) -> Value {
    obj(vec![("a", s(&e.a)), ("b", s(&e.b)), ("profile", profile(&e.profile))])
}

fn tiered(t: &TieredLinks) -> Value {
    obj(vec![("backbone", profile(&t.backbone)), ("regional", profile(&t.regional))])
}

fn profile(p: &ProfileDecl) -> Value {
    match *p {
        ProfileDecl::CernAnlProduction => obj(vec![("kind", s("cern_anl_production"))]),
        ProfileDecl::Clean { rate_bps, one_way_us, queue } => obj(vec![
            ("kind", s("clean")),
            ("rate_bps", u(rate_bps)),
            ("one_way_us", u(one_way_us)),
            ("queue", u(queue as u64)),
        ]),
    }
}

fn control(c: &Control) -> Value {
    obj(vec![
        ("collection", s(&c.collection)),
        ("recovery", Value::Bool(c.recovery)),
        ("breaker", Value::Bool(c.breaker)),
        ("federation", Value::Bool(c.federation)),
        ("fetch_policy", policy(&c.fetch_policy)),
        ("trust_all", Value::Bool(c.trust_all)),
        ("full_mesh_subscriptions", Value::Bool(c.full_mesh_subscriptions)),
    ])
}

fn policy(p: &PolicyDecl) -> Value {
    match *p {
        PolicyDecl::Default => obj(vec![("kind", s("default"))]),
        PolicyDecl::Single => obj(vec![("kind", s("single"))]),
        PolicyDecl::Multi { max_sources, min_chunk } => obj(vec![
            ("kind", s("multi")),
            ("max_sources", u(max_sources as u64)),
            ("min_chunk", u(min_chunk)),
        ]),
    }
}

fn telemetry(t: &TelemetryDecl) -> Value {
    let mut fields = Vec::new();
    if let Some(cap) = t.recorder_capacity {
        fields.push(("recorder_capacity", u(cap as u64)));
    }
    if let Some(bucket) = t.timeseries_bucket_ns {
        fields.push(("timeseries_bucket_ns", u(bucket)));
    }
    fields.push(("timeseries_after_build", Value::Bool(t.timeseries_after_build)));
    obj(fields)
}

fn faults(f: &Faults) -> Value {
    match f {
        Faults::None => obj(vec![("kind", s("none"))]),
        Faults::Empty => obj(vec![("kind", s("empty"))]),
        Faults::Seeded { catalog_chaos } => {
            let mut fields = vec![("kind", s("seeded"))];
            if let Some(c) = catalog_chaos {
                fields.push((
                    "catalog_chaos",
                    obj(vec![
                        ("crashes", u(c.crashes as u64)),
                        ("losses", u(c.losses as u64)),
                        ("delays", u(c.delays as u64)),
                    ]),
                ));
            }
            obj(fields)
        }
        Faults::Timeline { events } => obj(vec![
            ("kind", s("timeline")),
            (
                "events",
                Value::Array(
                    events
                        .iter()
                        .map(|ev| {
                            let mut fields = vec![("at_ns", u(ev.at_ns))];
                            match &ev.event {
                                EventDecl::SiteDown { site } => {
                                    fields.push(("kind", s("site_down")));
                                    fields.push(("site", s(site)));
                                }
                                EventDecl::SiteUp { site } => {
                                    fields.push(("kind", s("site_up")));
                                    fields.push(("site", s(site)));
                                }
                                EventDecl::LinkDown { from, to, both_ways } => {
                                    fields.push(("kind", s("link_down")));
                                    fields.push(("from", s(from)));
                                    fields.push(("to", s(to)));
                                    fields.push(("both_ways", Value::Bool(*both_ways)));
                                }
                                EventDecl::LinkUp { from, to, both_ways } => {
                                    fields.push(("kind", s("link_up")));
                                    fields.push(("from", s(from)));
                                    fields.push(("to", s(to)));
                                    fields.push(("both_ways", Value::Bool(*both_ways)));
                                }
                            }
                            obj(fields)
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn workload(w: &WorkloadDecl) -> Value {
    match w {
        WorkloadDecl::Fetch { size, lfn, dst, sources, t0_ns, settle_ns } => obj(vec![
            ("kind", s("fetch")),
            ("size", u(*size)),
            ("lfn", s(lfn)),
            ("dst", s(dst)),
            ("sources", Value::Array(sources.iter().map(|src| s(src)).collect())),
            ("t0_ns", u(*t0_ns)),
            ("settle_ns", u(*settle_ns)),
        ]),
        WorkloadDecl::ReplicationSoak { rounds, file_size, round_gap_ns, drain_rounds } => {
            obj(vec![
                ("kind", s("replication_soak")),
                ("rounds", u(*rounds as u64)),
                ("file_size", u(*file_size)),
                ("round_gap_ns", u(*round_gap_ns)),
                ("drain_rounds", u(*drain_rounds as u64)),
            ])
        }
        WorkloadDecl::CatalogSoak {
            files_per_site,
            lookup_rounds,
            lookups_per_round,
            zipf_alpha,
            file_size,
            round_gap_ns,
        } => obj(vec![
            ("kind", s("catalog_soak")),
            ("files_per_site", u(*files_per_site as u64)),
            ("lookup_rounds", u(*lookup_rounds as u64)),
            ("lookups_per_round", u(*lookups_per_round as u64)),
            ("zipf_alpha", Value::Float(*zipf_alpha)),
            ("file_size", u(*file_size)),
            ("round_gap_ns", u(*round_gap_ns)),
        ]),
        WorkloadDecl::GridSoak {
            files_per_site,
            rounds,
            ops_per_round,
            zipf_alpha,
            file_size,
            round_gap_ns,
        } => obj(vec![
            ("kind", s("grid_soak")),
            ("files_per_site", u(*files_per_site as u64)),
            ("rounds", u(*rounds as u64)),
            ("ops_per_round", u(*ops_per_round as u64)),
            ("zipf_alpha", Value::Float(*zipf_alpha)),
            ("file_size", u(*file_size as u64)),
            ("round_gap_ns", u(*round_gap_ns)),
        ]),
    }
}
