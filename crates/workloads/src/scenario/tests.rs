//! Scenario-DSL contract tests: round-trip fidelity, strict rejection of
//! malformed input, byte-identity of DSL-driven runs against the builtin
//! constructors, and the committed `scenarios/` files staying in lockstep
//! with the code.

use super::*;

use crate::catalog::CatalogSoakSpec;
use crate::grid::GridSoakSpec;
use crate::soak::{ChaosMode, SoakSpec};

/// Every committed scenario file and the builtin that generates it.
fn committed() -> Vec<(&'static str, Scenario)> {
    vec![
        ("fetch.json", Scenario::fetch(&FetchSpec::default())),
        (
            "fetch_striped_crash.json",
            Scenario::fetch(&FetchSpec {
                policy: striped_policy(),
                crash_fastest: true,
                ..FetchSpec::default()
            }),
        ),
        (
            "soak_quick.json",
            Scenario::replication_soak(&SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE))),
        ),
        (
            "catalog_quick.json",
            Scenario::catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(0xFEDCA7))),
        ),
        (
            "catalog_full.json",
            Scenario::catalog_soak(&CatalogSoakSpec::full(ChaosMode::Seeded(0xFEDCA7))),
        ),
        ("grid_quick.json", Scenario::grid_soak(&GridSoakSpec::quick())),
        ("grid_full.json", Scenario::grid_soak(&GridSoakSpec::full())),
        ("grid_at_scale_200.json", Scenario::grid_soak(&GridSoakSpec::at_scale(200))),
    ]
}

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

// -----------------------------------------------------------------------
// Round-trip fidelity
// -----------------------------------------------------------------------

#[test]
fn every_builtin_round_trips_through_json() {
    for (name, scenario) in committed() {
        let text = scenario.to_json_pretty();
        let back = Scenario::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{name}: canonical JSON failed to re-parse: {e}"));
        assert_eq!(back, scenario, "{name}: parse(serialize(s)) != s");
        // Serialization is canonical: a second trip is textually identical.
        assert_eq!(back.to_json_pretty(), text, "{name}: serialization is not canonical");
    }
}

#[test]
fn committed_files_match_builtins() {
    let dir = scenarios_dir();
    if std::env::var("GDMP_WRITE_SCENARIOS").is_ok() {
        std::fs::create_dir_all(&dir).expect("create scenarios dir");
        for (name, scenario) in committed() {
            let mut text = scenario.to_json_pretty();
            text.push('\n');
            std::fs::write(dir.join(name), text).expect("write scenario file");
        }
    }
    for (name, scenario) in committed() {
        let path = dir.join(name);
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(regenerate with GDMP_WRITE_SCENARIOS=1 cargo test -p gdmp-workloads)",
                path.display()
            )
        });
        let mut expected = scenario.to_json_pretty();
        expected.push('\n');
        assert_eq!(
            on_disk, expected,
            "{name} is stale; regenerate with GDMP_WRITE_SCENARIOS=1 cargo test -p gdmp-workloads"
        );
        // And the file must load as exactly the builtin.
        let loaded = Scenario::load(path.to_str().unwrap()).expect("committed file loads");
        assert_eq!(loaded, scenario, "{name} loads to something other than its builtin");
    }
}

// -----------------------------------------------------------------------
// Strictness: unknown fields, unknown kinds, dangling references
// -----------------------------------------------------------------------

#[test]
fn unknown_top_level_field_is_rejected_with_context() {
    let mut text = Scenario::fetch(&FetchSpec::default()).to_json_pretty();
    text = text.replacen("\"name\"", "\"naem\"", 1);
    let err = Scenario::from_json_str(&text).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, ScenarioError::Schema(_)), "want Schema error, got {err:?}");
    assert!(msg.contains("naem"), "error must name the offending field: {msg}");
    assert!(msg.contains("accepted fields"), "error must list what is accepted: {msg}");
}

#[test]
fn unknown_nested_field_is_rejected_with_context() {
    let mut text = Scenario::fetch(&FetchSpec::default()).to_json_pretty();
    text = text.replacen("\"workers\"", "\"wrokers\"", 1);
    let err = Scenario::from_json_str(&text).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("wrokers"), "error must name the typo: {msg}");
    assert!(msg.contains("links"), "error must locate the section: {msg}");
}

#[test]
fn unknown_kind_is_rejected_with_accepted_list() {
    let mut text = Scenario::fetch(&FetchSpec::default()).to_json_pretty();
    text = text.replacen("\"classic_tape\"", "\"classic_tap\"", 1);
    let err = Scenario::from_json_str(&text).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("classic_tap"), "error must quote the bad kind: {msg}");
    assert!(msg.contains("accepted kinds"), "error must list valid kinds: {msg}");
}

#[test]
fn malformed_json_is_a_parse_error() {
    let err = Scenario::from_json_str("{ not json").unwrap_err();
    assert!(matches!(err, ScenarioError::Parse(_)), "got {err:?}");
}

#[test]
fn dangling_edge_reference_is_rejected() {
    let mut scenario = Scenario::fetch(&FetchSpec::default());
    scenario.links.edges[0].a = "cernn".to_string();
    let err = Scenario::from_json_str(&scenario.to_json_pretty()).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, ScenarioError::Reference(_)), "got {err:?}");
    assert!(msg.contains("cernn"), "error must name the dangling site: {msg}");
    assert!(msg.contains("known sites"), "error must list known sites: {msg}");
}

#[test]
fn dangling_fault_target_is_rejected() {
    let mut scenario = Scenario::fetch(&FetchSpec { crash_fastest: true, ..FetchSpec::default() });
    if let Faults::Timeline { events } = &mut scenario.faults {
        events[0].event = EventDecl::SiteDown { site: "atlantis".to_string() };
    }
    let err = scenario.validate().unwrap_err();
    assert!(err.to_string().contains("atlantis"), "{err}");
}

#[test]
fn fetch_from_itself_is_rejected() {
    let mut scenario = Scenario::fetch(&FetchSpec::default());
    if let WorkloadDecl::Fetch { sources, .. } = &mut scenario.workload {
        sources.push(FETCH_DST.to_string());
    }
    let err = scenario.validate().unwrap_err();
    assert!(err.to_string().contains("cannot fetch from itself"), "{err}");
}

#[test]
fn catalog_chaos_without_federation_is_rejected() {
    let mut scenario = Scenario::catalog_soak(&CatalogSoakSpec::quick(ChaosMode::Seeded(1)));
    scenario.control.federation = false;
    let err = scenario.validate().unwrap_err();
    assert!(err.to_string().contains("federation"), "{err}");
}

#[test]
fn tiered_links_require_tiered_topology() {
    let mut scenario = Scenario::grid_soak(&GridSoakSpec::quick());
    scenario.topology = Topology::Flat {
        count: 4,
        prefix: "site".to_string(),
        pad: 0,
        key_seed_base: 0,
        storage: StorageDecl::ClassicTape,
    };
    let err = scenario.validate().unwrap_err();
    assert!(err.to_string().contains("tiered"), "{err}");
}

#[test]
fn wrong_workload_for_runner_is_rejected() {
    let scenario = Scenario::replication_soak(&SoakSpec::quick(ChaosMode::Off));
    let err = run_fetch_scenario(&scenario).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("fetch") && msg.contains("replication_soak"), "{msg}");
}

// -----------------------------------------------------------------------
// Byte-identity: a scenario that went through JSON replays the builtin
// run exactly — same trace, same telemetry export, byte for byte.
// -----------------------------------------------------------------------

#[test]
fn fetch_scenario_from_json_replays_byte_identically() {
    let spec = FetchSpec { policy: striped_policy(), crash_fastest: true, ..FetchSpec::default() };
    let direct = crate::fetch::run_fetch(&spec);
    let parsed = Scenario::from_json_str(&Scenario::fetch(&spec).to_json_pretty()).unwrap();
    let replayed = run_fetch_scenario(&parsed).unwrap();
    assert_eq!(replayed.elapsed, direct.elapsed);
    assert_eq!(replayed.per_source_bytes, direct.per_source_bytes);
    assert_eq!(replayed.ranges_reassigned, direct.ranges_reassigned);
    assert_eq!(
        replayed.registry.export_json_lines(),
        direct.registry.export_json_lines(),
        "JSON round-trip must not change a single exported byte"
    );
}

#[test]
fn soak_scenario_from_json_replays_byte_identically() {
    let spec = SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE));
    let direct = crate::soak::run_soak(&spec);
    let parsed =
        Scenario::from_json_str(&Scenario::replication_soak(&spec).to_json_pretty()).unwrap();
    let replayed = run_soak_scenario(&parsed).unwrap();
    assert_eq!(replayed.trace, direct.trace);
    assert_eq!(replayed.final_clock_ns, direct.final_clock_ns);
    assert_eq!(replayed.schedule_debug, direct.schedule_debug);
    assert_eq!(
        replayed.registry.export_json_lines(),
        direct.registry.export_json_lines(),
        "JSON round-trip must not change a single exported byte"
    );
}

#[test]
fn catalog_scenario_from_json_replays_byte_identically() {
    let spec = CatalogSoakSpec::quick(ChaosMode::Seeded(0xFEDCA7));
    let direct = crate::catalog::run_catalog_soak(&spec);
    let parsed = Scenario::from_json_str(&Scenario::catalog_soak(&spec).to_json_pretty()).unwrap();
    let replayed = run_catalog_scenario(&parsed).unwrap();
    assert_eq!(replayed.trace, direct.trace);
    assert_eq!(replayed.final_clock_ns, direct.final_clock_ns);
    assert_eq!(replayed.stats, direct.stats);
    assert_eq!(
        replayed.registry.export_json_lines(),
        direct.registry.export_json_lines(),
        "JSON round-trip must not change a single exported byte"
    );
}

#[test]
fn grid_scenario_from_json_replays_byte_identically() {
    let spec = GridSoakSpec::quick();
    let direct = crate::grid::run_grid_soak(&spec);
    let parsed = Scenario::from_json_str(&Scenario::grid_soak(&spec).to_json_pretty()).unwrap();
    let replayed = run_grid_scenario(&parsed).unwrap();
    assert_eq!(replayed.trace, direct.trace);
    assert_eq!(replayed.final_clock_ns, direct.final_clock_ns);
    assert_eq!(replayed.lookups, direct.lookups);
    assert_eq!(
        replayed.registry.export_json_lines(),
        direct.registry.export_json_lines(),
        "JSON round-trip must not change a single exported byte"
    );
}

// -----------------------------------------------------------------------
// Spec inversion and the generic dispatcher
// -----------------------------------------------------------------------

#[test]
fn spec_inversion_recovers_the_original_spec() {
    let soak = SoakSpec::quick(ChaosMode::Seeded(0xC0FFEE)).with_workers(2);
    let s = Scenario::replication_soak(&soak);
    let back = s.soak_spec().unwrap();
    assert_eq!(back.sites, soak.sites);
    assert_eq!(back.rounds, soak.rounds);
    assert_eq!(back.workers, 2);
    assert_eq!(back.chaos, soak.chaos);

    let cat = CatalogSoakSpec::full(ChaosMode::EmptySchedule);
    let back = Scenario::catalog_soak(&cat).catalog_spec().unwrap();
    assert_eq!(back.sites, cat.sites);
    assert_eq!(back.chaos, ChaosMode::EmptySchedule);

    let grid = GridSoakSpec::full();
    let back = Scenario::grid_soak(&grid).grid_spec().unwrap();
    assert_eq!(back.site_count(), grid.site_count());
    assert_eq!(back.seed, grid.seed);

    let fetch = FetchSpec { crash_fastest: true, ..FetchSpec::default() };
    let back = Scenario::fetch(&fetch).fetch_spec().unwrap();
    assert_eq!(back.size, fetch.size);
    assert!(back.crash_fastest);
    assert_eq!(back.seed, fetch.seed);
}

#[test]
fn run_scenario_dispatches_on_workload_kind() {
    let out = run_scenario(&Scenario::replication_soak(&SoakSpec::quick(ChaosMode::Off))).unwrap();
    assert!(matches!(out, ScenarioOutcome::ReplicationSoak(_)));
    let out = run_scenario(&Scenario::fetch(&FetchSpec::default())).unwrap();
    assert!(matches!(out, ScenarioOutcome::Fetch(_)));
}

#[test]
fn fetch_sweep_mutators_match_spec_flags() {
    let base = Scenario::fetch(&FetchSpec::default());
    let crashed = base.clone().with_striped_policy().with_fastest_source_crash().unwrap();
    let twin = Scenario::fetch(&FetchSpec {
        policy: striped_policy(),
        crash_fastest: true,
        ..FetchSpec::default()
    });
    assert_eq!(crashed, twin, "mutators must reproduce the builtin crash scenario exactly");
}
