//! Scenario-driven runners: the workload loops that used to live inside
//! `run_fetch` / `run_soak` / `run_catalog_soak` / `run_grid_soak`, now
//! fed from the declarative schema. The hard-coded entry points delegate
//! here through the builtin [`Scenario`] constructors, and the behaviour
//! is byte-identical (pinned by the twin tests and the bench baselines).

use bytes::Bytes;
use gdmp::invariants::check_grid;
use gdmp::prelude::*;
use gdmp_telemetry::{MetricValue, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::result::Result;

use super::compile::{assemble, fault_horizon};
use super::{Faults, Scenario, ScenarioError, WorkloadDecl};
use crate::catalog::CatalogSoakOutcome;
use crate::fetch::FetchOutcome;
use crate::grid::GridSoakOutcome;
use crate::soak::SoakOutcome;
use crate::zipf::Zipf;

/// What [`run_scenario`] produced, by workload kind.
#[derive(Debug)]
pub enum ScenarioOutcome {
    Fetch(FetchOutcome),
    ReplicationSoak(SoakOutcome),
    CatalogSoak(CatalogSoakOutcome),
    GridSoak(GridSoakOutcome),
}

/// Run whatever workload the scenario declares.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioError> {
    match &scenario.workload {
        WorkloadDecl::Fetch { .. } => run_fetch_scenario(scenario).map(ScenarioOutcome::Fetch),
        WorkloadDecl::ReplicationSoak { .. } => {
            run_soak_scenario(scenario).map(ScenarioOutcome::ReplicationSoak)
        }
        WorkloadDecl::CatalogSoak { .. } => {
            run_catalog_scenario(scenario).map(ScenarioOutcome::CatalogSoak)
        }
        WorkloadDecl::GridSoak { .. } => run_grid_scenario(scenario).map(ScenarioOutcome::GridSoak),
    }
}

fn counter_sum(reg: &Registry, name: &str, label_frags: &[&str]) -> u64 {
    reg.metrics_snapshot()
        .iter()
        .filter(|(n, labels, _)| n == name && label_frags.iter().all(|f| labels.contains(f)))
        .map(|(_, _, v)| match v {
            MetricValue::Counter(c) => *c,
            _ => 0,
        })
        .sum()
}

fn trace_of(reg: &Registry) -> Vec<String> {
    reg.recent_events().iter().map(|e| format!("{} {} {:?}", e.t_ns, e.kind, e.detail)).collect()
}

/// The measured multi-source fetch (see [`crate::fetch`]).
pub fn run_fetch_scenario(scenario: &Scenario) -> Result<FetchOutcome, ScenarioError> {
    let WorkloadDecl::Fetch { size, lfn, dst, sources, t0_ns, settle_ns } = &scenario.workload
    else {
        return Err(ScenarioError::Workload(format!(
            "run_fetch_scenario needs a `fetch` workload, got `{}`",
            scenario.workload.kind()
        )));
    };
    let spec = scenario.fetch_spec()?;
    let t0 = SimTime::ZERO + SimDuration::from_nanos(*t0_ns);
    let crash = matches!(&scenario.faults, Faults::Timeline { events } if !events.is_empty());

    let compiled = assemble(scenario)?;
    let mut grid = compiled.grid;
    let reg = compiled.registry;

    // Seed: publish at the first source, pre-replicate to the others over
    // the fast paths, then park the clock at exactly t0.
    let fill: Vec<u8> = (0..*size).map(|i| (i % 251) as u8).collect();
    grid.publish_file(&sources[0], lfn, Bytes::from(fill), "flat").expect("publish");
    for src in &sources[1..] {
        grid.replicate(src, lfn).expect("replica seeding");
    }
    assert!(grid.now() < t0, "seeding must finish before the measured fetch");
    grid.advance(t0.since(grid.now()));

    // The measured fetch.
    let before = reg.metrics_snapshot();
    let report = grid.replicate(dst, lfn).expect("measured fetch");
    let elapsed = report.total_time();
    let agg_mbps = report.effective_mbps();

    // Per-source attribution: transfer_bytes counters on the source→dst
    // edges that grew during the measured fetch (seeding traffic went to
    // the other sources and is excluded by the dst label).
    let before_bytes = |src: &str| {
        before
            .iter()
            .filter(|(n, labels, _)| {
                n == "transfer_bytes"
                    && labels.contains(&format!("src={src}"))
                    && labels.contains(&format!("dst={dst}"))
            })
            .map(|(_, _, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum::<u64>()
    };
    let per_source_bytes: Vec<(String, u64)> = sources
        .iter()
        .map(|src| {
            let frags = [format!("src={src}"), format!("dst={dst}")];
            let frags: Vec<&str> = frags.iter().map(String::as_str).collect();
            let after = counter_sum(&reg, "transfer_bytes", &frags);
            (src.to_string(), after.saturating_sub(before_bytes(src)))
        })
        .collect();

    // Drive the run to convergence: let any crashed source restart and
    // resync, then sweep the invariants.
    if crash {
        grid.advance(SimDuration::from_nanos(*settle_ns));
        grid.run_recovery();
    }
    let invariants = check_grid(&mut grid);

    Ok(FetchOutcome {
        spec,
        report,
        elapsed,
        agg_mbps,
        per_source_bytes,
        ranges_reassigned: counter_sum(&reg, "ranges_reassigned", &[]),
        plan_rebuilds: counter_sum(&reg, "plan_rebuilds", &[]),
        converged: invariants.is_clean(),
        registry: reg,
    })
}

/// The replication chaos soak (see [`crate::soak`]).
pub fn run_soak_scenario(scenario: &Scenario) -> Result<SoakOutcome, ScenarioError> {
    let WorkloadDecl::ReplicationSoak { rounds, file_size, round_gap_ns, drain_rounds } =
        &scenario.workload
    else {
        return Err(ScenarioError::Workload(format!(
            "run_soak_scenario needs a `replication_soak` workload, got `{}`",
            scenario.workload.kind()
        )));
    };
    let spec_chaos = scenario.chaos_mode()?;
    let round_gap = SimDuration::from_nanos(*round_gap_ns);

    let compiled = assemble(scenario)?;
    let mut grid = compiled.grid;
    let reg = compiled.registry;
    let names = compiled.names;
    let horizon = fault_horizon(&grid);

    let mut published = 0usize;
    let mut replicated = 0usize;
    for round in 0..*rounds {
        for (i, name) in names.iter().enumerate() {
            // Alternate publishers each round; a crashed GDMP server
            // publishes nothing.
            if (round + i) % 2 != 0 || grid.chaos_state().is_down(name) {
                continue;
            }
            let lfn = format!("{name}_r{round}.dat");
            let fill = ((i + round) % 251) as u8;
            let data = Bytes::from(vec![fill; *file_size as usize]);
            grid.publish_file(name, &lfn, data, "flat").expect("publish on a live site");
            published += 1;
        }
        grid.advance(round_gap);
        for name in &names {
            if grid.chaos_state().is_down(name) {
                continue;
            }
            let reports = grid.replicate_pending(name).expect("only retryable failures deferred");
            replicated += reports.len();
        }
        crate::observe::sample_grid_series(&grid, &reg);
        grid.advance(round_gap);
    }

    // Let every scheduled fault fire and heal.
    let now = grid.now();
    if horizon > now {
        grid.advance(horizon - now + SimDuration::from_secs(1));
    }

    // Drain: replay journals, resync restarted sites, retry deferred
    // replications until the grid is quiescent (or the budget runs out).
    for _ in 0..*drain_rounds {
        grid.run_recovery();
        for name in &names {
            let reports = grid.replicate_pending(name).expect("only retryable failures deferred");
            replicated += reports.len();
        }
        grid.advance(SimDuration::from_secs(30));
        crate::observe::sample_grid_series(&grid, &reg);
        let quiescent = grid.chaos_state().pending_restarts() == 0
            && names.iter().all(|n| {
                let s = grid.site(n).expect("site exists");
                s.import_queue.is_empty() && s.journal.is_empty()
            });
        if quiescent {
            break;
        }
    }

    let report = check_grid(&mut grid);
    Ok(SoakOutcome {
        spec_chaos,
        published,
        replicated,
        final_clock_ns: grid.now().nanos(),
        schedule_debug: compiled.schedule_debug,
        trace: trace_of(&reg),
        report,
        registry: reg,
    })
}

/// The federated-catalog lookup soak (see [`crate::catalog`]).
pub fn run_catalog_scenario(scenario: &Scenario) -> Result<CatalogSoakOutcome, ScenarioError> {
    let WorkloadDecl::CatalogSoak {
        files_per_site,
        lookup_rounds,
        lookups_per_round,
        zipf_alpha,
        file_size,
        round_gap_ns,
    } = &scenario.workload
    else {
        return Err(ScenarioError::Workload(format!(
            "run_catalog_scenario needs a `catalog_soak` workload, got `{}`",
            scenario.workload.kind()
        )));
    };
    let spec_chaos = scenario.chaos_mode()?;
    let round_gap = SimDuration::from_nanos(*round_gap_ns);
    let sites = scenario.topology.site_names().len();

    let compiled = assemble(scenario)?;
    let mut grid = compiled.grid;
    let reg = compiled.registry;
    let names = compiled.names;
    let horizon = fault_horizon(&grid);
    let file_name = crate::catalog::file_name;

    // Publish phase: every file has exactly one owner, owner i holding
    // files i, i+sites, i+2*sites, ... A site that is down when its turn
    // comes publishes nothing (exactly like the replication soak).
    let total_files = sites * files_per_site;
    let mut published = 0usize;
    for f in 0..total_files {
        let owner = &names[f % sites];
        if grid.chaos_state().is_down(owner) {
            continue;
        }
        let fill = (f % 251) as u8;
        grid.publish_file(
            owner,
            &file_name(f),
            Bytes::from(vec![fill; *file_size as usize]),
            "flat",
        )
        .expect("publish on a live site");
        published += 1;
    }

    // Lookup phase: Zipf-skewed queries from rotating requesters while
    // the fault plan does its worst. The one inviolable check runs every
    // round: the federation has never returned a wrong answer.
    let zipf = Zipf::new(total_files.max(1), *zipf_alpha);
    let mut rng = StdRng::seed_from_u64(0x0CA7_A106 ^ scenario.seed);
    let mut lookups = 0usize;
    let mut answered = 0usize;
    let mut failed = 0usize;
    let (mut via_local, mut via_rli, mut via_fallback, mut via_scatter) = (0, 0, 0, 0);
    let mut degraded_answers = 0usize;
    for _round in 0..*lookup_rounds {
        grid.advance(round_gap);
        for _ in 0..*lookups_per_round {
            let requester = &names[rng.gen_range(0..sites)];
            if grid.chaos_state().is_down(requester) {
                continue;
            }
            let lfn = file_name(zipf.sample(&mut rng));
            lookups += 1;
            match grid.lookup_replicas(requester, &lfn) {
                Ok(r) => {
                    answered += 1;
                    match r.via {
                        LookupVia::Local => via_local += 1,
                        LookupVia::Rli => via_rli += 1,
                        LookupVia::Fallback => via_fallback += 1,
                        LookupVia::Scatter => via_scatter += 1,
                        LookupVia::Central => unreachable!("federation is on"),
                    }
                    if r.degraded {
                        degraded_answers += 1;
                    }
                }
                // Honest misses only: the owner's LRC was dead or cut off
                // (retryable), or it was never published because the owner
                // was down at publish time.
                Err(GdmpError::SiteUnreachable(_)) | Err(GdmpError::NotPublished(_)) => failed += 1,
                Err(e) => panic!("unexpected lookup error: {e}"),
            }
        }
        let stats = &grid.federation().expect("federation on").stats;
        assert_eq!(stats.wrong_answers, 0, "federation returned a wrong answer mid-soak");
    }

    // Heal and quiesce: run past the fault horizon, then drain restarts.
    let now = grid.now();
    if horizon > now {
        grid.advance(horizon - now + SimDuration::from_secs(1));
    }
    for _ in 0..20 {
        grid.run_recovery();
        grid.advance(SimDuration::from_secs(30));
        if grid.chaos_state().pending_restarts() == 0 {
            break;
        }
    }

    // Post-heal sweep: with every fault healed and fresh soft state
    // flowed, every published file must be findable again — the ladder
    // always completes once the grid is whole.
    for f in 0..total_files {
        let lfn = file_name(f);
        if grid.catalog.locate(&lfn).map(|l| l.is_empty()).unwrap_or(true) {
            continue; // owner was down at publish time; never existed
        }
        let requester = &names[(f * 7) % sites];
        lookups += 1;
        match grid.lookup_replicas(requester, &lfn) {
            Ok(_) => answered += 1,
            Err(e) => panic!("post-heal lookup of {lfn} failed: {e}"),
        }
    }

    let report = check_grid(&mut grid);
    let stats = grid.federation().expect("federation on").stats.clone();
    Ok(CatalogSoakOutcome {
        spec_chaos,
        published,
        lookups,
        answered,
        failed,
        via_local,
        via_rli,
        via_fallback,
        via_scatter,
        degraded_answers,
        stats,
        final_clock_ns: grid.now().nanos(),
        schedule_debug: compiled.schedule_debug,
        trace: trace_of(&reg),
        report,
        registry: reg,
    })
}

/// The Tier-0/1/2 control-plane mix (see [`crate::grid`]).
pub fn run_grid_scenario(scenario: &Scenario) -> Result<GridSoakOutcome, ScenarioError> {
    let WorkloadDecl::GridSoak {
        files_per_site,
        rounds,
        ops_per_round,
        zipf_alpha,
        file_size,
        round_gap_ns,
    } = &scenario.workload
    else {
        return Err(ScenarioError::Workload(format!(
            "run_grid_scenario needs a `grid_soak` workload, got `{}`",
            scenario.workload.kind()
        )));
    };
    let round_gap = SimDuration::from_nanos(*round_gap_ns);

    let compiled = assemble(scenario)?;
    let mut grid = compiled.grid;
    let reg = compiled.registry;
    let names = compiled.names;
    let sites = names.len();
    let file_name = crate::grid::file_name;

    // Seed the population round-robin across all tiers, then let two
    // soft-state rounds warm the RLI tree.
    let total_files = sites * files_per_site;
    for f in 0..total_files {
        let owner = &names[f % sites];
        grid.publish_file(owner, &file_name(f), Bytes::from(vec![7u8; *file_size]), "flat")
            .expect("seeding a healthy grid");
    }
    grid.advance(SimDuration::from_secs(65));

    let mut out = GridSoakOutcome {
        sites,
        lookups: 0,
        publishes: 0,
        fetches: 0,
        index_hits: 0,
        fallbacks: 0,
        scatters: 0,
        confirms: 0,
        false_positives: 0,
        wrong_answers: 0,
        final_clock_ns: 0,
        trace: Vec::new(),
        registry: reg.clone(),
    };

    let zipf = Zipf::new(total_files, *zipf_alpha);
    let mut rng = StdRng::seed_from_u64(0x9A1D_50AC ^ scenario.seed);
    let mut published = total_files;

    for _round in 0..*rounds {
        grid.advance(round_gap);
        for _op in 0..*ops_per_round {
            let requester = names[rng.gen_range(0..sites)].clone();
            let roll: u32 = rng.gen_range(0..100);
            if roll < 70 {
                // Zipf lookup: hot files dominate, exactly like the
                // web-caching access patterns the paper cites.
                let lfn = file_name(zipf.sample(&mut rng));
                let r = grid.lookup_replicas(&requester, &lfn).expect("healthy grid answers");
                out.lookups += 1;
                out.confirms += u64::from(r.confirms);
                out.false_positives += u64::from(r.false_positives);
                match r.via {
                    LookupVia::Local | LookupVia::Rli => out.index_hits += 1,
                    LookupVia::Fallback => out.fallbacks += 1,
                    LookupVia::Scatter => out.scatters += 1,
                    LookupVia::Central => {}
                }
            } else if roll < 90 {
                // Publish a brand-new file at the chosen site.
                let lfn = file_name(published);
                published += 1;
                grid.publish_file(&requester, &lfn, Bytes::from(vec![7u8; *file_size]), "flat")
                    .expect("publish on a live site");
                out.publishes += 1;
            } else {
                // Fetch (replicate) a hot file to the chosen site; pulling
                // a replica it already holds is a no-op success.
                let lfn = file_name(zipf.sample(&mut rng));
                match grid.replicate(&requester, &lfn) {
                    Ok(_) | Err(GdmpError::AlreadyReplicated { .. }) => out.fetches += 1,
                    Err(e) => panic!("healthy grid fetch failed: {e}"),
                }
            }
        }
    }

    out.final_clock_ns = grid.now().nanos();
    if let Some(fed) = grid.federation() {
        out.wrong_answers = fed.stats.wrong_answers;
    }
    out.trace = trace_of(&reg);
    Ok(out)
}
