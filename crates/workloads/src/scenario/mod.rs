//! Declarative scenario DSL: one JSON file describes a whole experiment —
//! sites (with per-site storage backends), WAN links, fault timelines, and
//! the workload mix — and compiles deterministically into the same
//! [`gdmp::GridBuilder`] + `ChaosPlan` + workload loop the hard-coded
//! constructors in [`crate::fetch`], [`crate::soak`], [`crate::catalog`],
//! and [`crate::grid`] used to build by hand. Those runners are now thin
//! wrappers over [`run_scenario`]; the builtin constructors
//! ([`Scenario::fetch`], [`Scenario::replication_soak`],
//! [`Scenario::catalog_soak`], [`Scenario::grid_soak`]) reproduce the old
//! runs byte for byte, and the committed files under `scenarios/` are
//! exactly those builtins serialized (asserted by tests).
//!
//! Parsing is strict: unknown fields, malformed values, and dangling site
//! references are rejected with actionable errors naming the offending
//! field and what was expected — a typo in a scenario file fails loudly
//! instead of silently running a different experiment.

mod compile;
mod run;

pub use run::{
    run_catalog_scenario, run_fetch_scenario, run_grid_scenario, run_scenario, run_soak_scenario,
    ScenarioOutcome,
};

use std::fmt;

use gdmp::chaos::{ChaosPlan, FaultEvent, FaultSchedule};
use gdmp::prelude::*;
use gdmp_simnet::link::LinkSpec;
use serde::{DeError, Deserialize, Serialize, Value};
use std::result::Result;

use crate::catalog::CatalogSoakSpec;
use crate::fetch::{fetch_t0, striped_policy, FetchSpec, FETCH_DST, FETCH_LFN, FETCH_SOURCES};
use crate::grid::GridSoakSpec;
use crate::soak::{ChaosMode, SoakSpec};

/// Why a scenario failed to load, parse, validate, or run.
#[derive(Debug, Clone)]
pub enum ScenarioError {
    /// The file could not be read.
    Io { path: String, message: String },
    /// The text is not JSON.
    Parse(String),
    /// The JSON does not match the schema (unknown field, wrong type,
    /// out-of-range value). The message names the field and the fix.
    Schema(String),
    /// A section references something that does not exist (a site name,
    /// a workload/topology shape mismatch).
    Reference(String),
    /// The scenario is well-formed but the requested runner cannot
    /// execute it (e.g. a fetch runner handed a soak workload).
    Workload(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, message } => {
                write!(f, "cannot read scenario `{path}`: {message}")
            }
            ScenarioError::Parse(m) => write!(f, "scenario is not valid JSON: {m}"),
            ScenarioError::Schema(m) => write!(f, "scenario schema error: {m}"),
            ScenarioError::Reference(m) => write!(f, "scenario reference error: {m}"),
            ScenarioError::Workload(m) => write!(f, "scenario workload error: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

/// One declarative experiment: everything [`run_scenario`] needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (also the default output label).
    pub name: String,
    /// The one seed: retry jitter, the seeded chaos plan, and the
    /// workload's RNG streams are all derived from it.
    pub seed: u64,
    pub topology: Topology,
    pub links: Links,
    pub control: Control,
    pub telemetry: TelemetryDecl,
    pub faults: Faults,
    pub workload: WorkloadDecl,
}

/// The site set. Generated shapes name sites exactly like the hard-coded
/// workloads did, so a generated topology replays their runs bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// Every site spelled out.
    Explicit { sites: Vec<SiteDecl> },
    /// `count` sites named `{prefix}{i}` (zero-padded to `pad` digits when
    /// `pad > 0`), org `{name}.grid`, key seeds `key_seed_base + i`.
    Flat { count: usize, prefix: String, pad: usize, key_seed_base: u64, storage: StorageDecl },
    /// The Tier-0/1/2 LHC shape of [`crate::grid`]: one `t0-core`, `tier1`
    /// regions `t1-rNN`, and `tier2_per_tier1` leaves `t2-rNN-sNN` each.
    Tiered { tier1: usize, tier2_per_tier1: usize, key_seed_base: u64, storage: StorageDecl },
}

/// One explicitly declared site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDecl {
    pub name: String,
    pub org: String,
    pub key_seed: u64,
    /// Disk pool bytes; `None` keeps the [`SiteConfig::named`] default.
    pub pool_capacity: Option<u64>,
    /// Archive tier behind the pool, selected per site.
    pub storage: StorageDecl,
}

/// Per-site archive backend selection — the scenario-schema face of
/// [`StorageConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum StorageDecl {
    /// [`StorageConfig::classic_tape`], the historical default.
    ClassicTape,
    Tape {
        mount_ms: u64,
        seek_bytes_per_sec: u64,
        stream_bytes_per_sec: u64,
        drives: usize,
        tape_capacity: u64,
    },
    DiskArray {
        capacity: u64,
        op_latency_us: u64,
        stream_bytes_per_sec: u64,
    },
    ObjectStore {
        rtt_us: u64,
        stream_bytes_per_sec: u64,
        cost_per_request: u64,
        cost_per_mib: u64,
    },
}

impl StorageDecl {
    pub fn to_config(&self) -> StorageConfig {
        match *self {
            StorageDecl::ClassicTape => StorageConfig::classic_tape(),
            StorageDecl::Tape {
                mount_ms,
                seek_bytes_per_sec,
                stream_bytes_per_sec,
                drives,
                tape_capacity,
            } => StorageConfig::Tape(TapeSpec {
                mount_time: SimDuration::from_millis(mount_ms),
                seek_bytes_per_sec,
                stream_bytes_per_sec,
                drives,
                tape_capacity,
            }),
            StorageDecl::DiskArray { capacity, op_latency_us, stream_bytes_per_sec } => {
                StorageConfig::DiskArray(DiskArraySpec {
                    capacity,
                    op_latency: SimDuration::from_micros(op_latency_us),
                    stream_bytes_per_sec,
                })
            }
            StorageDecl::ObjectStore {
                rtt_us,
                stream_bytes_per_sec,
                cost_per_request,
                cost_per_mib,
            } => StorageConfig::ObjectStore(ObjectStoreSpec {
                rtt: SimDuration::from_micros(rtt_us),
                stream_bytes_per_sec,
                cost_per_request,
                cost_per_mib,
            }),
        }
    }
}

/// The WAN fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct Links {
    /// Profile for every pair without an explicit edge.
    pub default: ProfileDecl,
    /// Engine worker threads per transfer (results are identical for any
    /// value; see `NetworkConfig::workers`).
    pub workers: usize,
    /// Per-pair overrides, installed in both directions at build time.
    pub edges: Vec<EdgeDecl>,
    /// Tier-0↔1 / Tier-1↔2 overlay for [`Topology::Tiered`], installed
    /// after build in region order (exactly like [`crate::grid`] did).
    pub tiered: Option<TieredLinks>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ProfileDecl {
    /// [`WanProfile::cern_anl_production`].
    CernAnlProduction,
    /// [`WanProfile::clean`] over one [`LinkSpec`].
    Clean { rate_bps: u64, one_way_us: u64, queue: usize },
}

impl ProfileDecl {
    pub fn to_profile(&self) -> WanProfile {
        match *self {
            ProfileDecl::CernAnlProduction => WanProfile::cern_anl_production(),
            ProfileDecl::Clean { rate_bps, one_way_us, queue } => WanProfile::clean(LinkSpec {
                rate_bps,
                propagation: SimDuration::from_micros(one_way_us),
                queue_capacity: queue,
            }),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDecl {
    pub a: String,
    pub b: String,
    pub profile: ProfileDecl,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TieredLinks {
    pub backbone: ProfileDecl,
    pub regional: ProfileDecl,
}

/// Grid-level switches that map one-to-one onto [`gdmp::GridBuilder`]
/// calls.
#[derive(Debug, Clone, PartialEq)]
pub struct Control {
    /// Replica-catalog collection name.
    pub collection: String,
    /// Install `BackoffRetry(scenario.seed)` as the recovery strategy.
    pub recovery: bool,
    /// Arm the default circuit breaker.
    pub breaker: bool,
    /// Federate the replica catalog with `FederationConfig::default()`.
    pub federation: bool,
    pub fetch_policy: PolicyDecl,
    pub trust_all: bool,
    /// Build-time full-mesh subscriptions (everyone consumes everyone).
    pub full_mesh_subscriptions: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PolicyDecl {
    /// Leave the grid's default policy untouched.
    Default,
    Single,
    Multi {
        max_sources: usize,
        min_chunk: u64,
    },
}

impl PolicyDecl {
    /// The policy to install, or `None` for [`PolicyDecl::Default`].
    pub fn to_policy(&self) -> Option<FetchPolicy> {
        match *self {
            PolicyDecl::Default => None,
            PolicyDecl::Single => Some(FetchPolicy::SingleSource),
            PolicyDecl::Multi { max_sources, min_chunk } => {
                Some(FetchPolicy::MultiSource { max_sources, min_chunk })
            }
        }
    }
}

/// How the run's registry is created and when its time-series switch on.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryDecl {
    /// Flight-recorder ring size; `None` uses `Registry::new()`.
    pub recorder_capacity: Option<usize>,
    /// Sim-time series bucket width; `None` leaves time-series off.
    pub timeseries_bucket_ns: Option<u64>,
    /// Enable the series after `build()` instead of before (the fetch
    /// scenario excludes build-time traffic from its timeline).
    pub timeseries_after_build: bool,
}

/// The fault plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Faults {
    /// No schedule installed at all.
    None,
    /// An empty schedule installed (the chaos-inertness contract).
    Empty,
    /// A [`gdmp::ChaosPlan`] derived from the scenario seed; with
    /// `catalog_chaos` it also crashes RLI nodes, loses updates, and
    /// delays catalog answers.
    Seeded { catalog_chaos: Option<CatalogChaosDecl> },
    /// Explicit events at absolute sim times.
    Timeline { events: Vec<TimelineEvent> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogChaosDecl {
    pub crashes: usize,
    pub losses: usize,
    pub delays: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    pub at_ns: u64,
    pub event: EventDecl,
}

/// The scenario-schema face of [`gdmp::FaultEvent`] (the subset with a
/// stable declarative shape).
#[derive(Debug, Clone, PartialEq)]
pub enum EventDecl {
    SiteDown { site: String },
    SiteUp { site: String },
    LinkDown { from: String, to: String, both_ways: bool },
    LinkUp { from: String, to: String, both_ways: bool },
}

impl EventDecl {
    fn to_event(&self) -> FaultEvent {
        match self {
            EventDecl::SiteDown { site } => FaultEvent::SiteDown { site: site.clone() },
            EventDecl::SiteUp { site } => FaultEvent::SiteUp { site: site.clone() },
            EventDecl::LinkDown { from, to, both_ways } => {
                FaultEvent::LinkDown { from: from.clone(), to: to.clone(), both_ways: *both_ways }
            }
            EventDecl::LinkUp { from, to, both_ways } => {
                FaultEvent::LinkUp { from: from.clone(), to: to.clone(), both_ways: *both_ways }
            }
        }
    }
}

/// What the experiment actually does once the grid stands.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadDecl {
    /// The multi-source fetch of [`crate::fetch`]: seed replicas at every
    /// source, park the clock at `t0_ns`, measure one replicate into
    /// `dst`. With a fault timeline, advance `settle_ns` afterwards and
    /// run recovery before the invariant sweep.
    Fetch { size: u64, lfn: String, dst: String, sources: Vec<String>, t0_ns: u64, settle_ns: u64 },
    /// The publish/replicate chaos soak of [`crate::soak`].
    ReplicationSoak { rounds: usize, file_size: u64, round_gap_ns: u64, drain_rounds: usize },
    /// The federated-catalog lookup soak of [`crate::catalog`].
    CatalogSoak {
        files_per_site: usize,
        lookup_rounds: usize,
        lookups_per_round: usize,
        zipf_alpha: f64,
        file_size: u64,
        round_gap_ns: u64,
    },
    /// The Tier-0/1/2 control-plane mix of [`crate::grid`].
    GridSoak {
        files_per_site: usize,
        rounds: usize,
        ops_per_round: usize,
        zipf_alpha: f64,
        file_size: usize,
        round_gap_ns: u64,
    },
}

impl WorkloadDecl {
    /// Short kind label (`"fetch"`, `"replication_soak"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadDecl::Fetch { .. } => "fetch",
            WorkloadDecl::ReplicationSoak { .. } => "replication_soak",
            WorkloadDecl::CatalogSoak { .. } => "catalog_soak",
            WorkloadDecl::GridSoak { .. } => "grid_soak",
        }
    }
}

// ---------------------------------------------------------------------------
// Topology expansion
// ---------------------------------------------------------------------------

impl Topology {
    /// Deterministic site names, in declaration/generation order.
    pub fn site_names(&self) -> Vec<String> {
        match self {
            Topology::Explicit { sites } => sites.iter().map(|s| s.name.clone()).collect(),
            Topology::Flat { count, prefix, pad, .. } => {
                (0..*count).map(|i| flat_name(prefix, *pad, i)).collect()
            }
            Topology::Tiered { tier1, tier2_per_tier1, .. } => {
                let mut names = Vec::with_capacity(1 + tier1 + tier1 * tier2_per_tier1);
                names.push("t0-core".to_string());
                for r in 0..*tier1 {
                    names.push(format!("t1-r{r:02}"));
                    for s in 0..*tier2_per_tier1 {
                        names.push(format!("t2-r{r:02}-s{s:02}"));
                    }
                }
                names
            }
        }
    }

    /// The [`SiteConfig`]s the builder is fed, in the same order.
    pub fn site_configs(&self) -> Vec<SiteConfig> {
        match self {
            Topology::Explicit { sites } => sites
                .iter()
                .map(|s| {
                    let mut cfg = SiteConfig::named(&s.name, &s.org, s.key_seed)
                        .with_storage(s.storage.to_config());
                    if let Some(pool) = s.pool_capacity {
                        cfg = cfg.with_pool(pool);
                    }
                    cfg
                })
                .collect(),
            Topology::Flat { count, prefix, pad, key_seed_base, storage } => (0..*count)
                .map(|i| {
                    let name = flat_name(prefix, *pad, i);
                    SiteConfig::named(&name, &format!("{name}.grid"), key_seed_base + i as u64)
                        .with_storage(storage.to_config())
                })
                .collect(),
            Topology::Tiered { key_seed_base, storage, .. } => self
                .site_names()
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    SiteConfig::named(name, &format!("{name}.grid"), key_seed_base + i as u64)
                        .with_storage(storage.to_config())
                })
                .collect(),
        }
    }
}

fn flat_name(prefix: &str, pad: usize, i: usize) -> String {
    if pad == 0 {
        format!("{prefix}{i}")
    } else {
        format!("{prefix}{i:0pad$}")
    }
}

// ---------------------------------------------------------------------------
// Builtin constructors: the hard-coded experiments as data
// ---------------------------------------------------------------------------

impl Scenario {
    /// The multi-source fetch experiment of [`crate::fetch::run_fetch`].
    pub fn fetch(spec: &FetchSpec) -> Scenario {
        let t0 = fetch_t0();
        let policy = match spec.policy {
            FetchPolicy::SingleSource => PolicyDecl::Single,
            FetchPolicy::MultiSource { max_sources, min_chunk } => {
                PolicyDecl::Multi { max_sources, min_chunk }
            }
        };
        let faults = if spec.crash_fastest {
            Faults::Timeline {
                events: vec![
                    TimelineEvent {
                        at_ns: (t0 + SimDuration::from_secs(3)).nanos(),
                        event: EventDecl::SiteDown { site: FETCH_SOURCES[0].to_string() },
                    },
                    TimelineEvent {
                        at_ns: (t0 + SimDuration::from_secs(600)).nanos(),
                        event: EventDecl::SiteUp { site: FETCH_SOURCES[0].to_string() },
                    },
                ],
            }
        } else {
            Faults::None
        };
        let clean = |rate_bps, one_way_us| ProfileDecl::Clean { rate_bps, one_way_us, queue: 256 };
        Scenario {
            name: "fetch".to_string(),
            seed: spec.seed,
            topology: Topology::Explicit {
                sites: vec![
                    site(FETCH_DST, "lyon.fr", 0x17),
                    site("cern", "cern.ch", 0xC0),
                    site("fnal", "fnal.gov", 0xF0),
                    site("kek", "kek.jp", 0x30),
                ],
            },
            links: Links {
                default: clean(1_000_000_000, 1_000),
                workers: 1,
                edges: vec![
                    edge("cern", FETCH_DST, clean(20_000_000, 20_000)),
                    edge("fnal", FETCH_DST, clean(12_000_000, 35_000)),
                    edge("kek", FETCH_DST, clean(8_000_000, 60_000)),
                ],
                tiered: None,
            },
            control: Control {
                collection: "fetch".to_string(),
                recovery: true,
                breaker: true,
                federation: false,
                fetch_policy: policy,
                trust_all: true,
                full_mesh_subscriptions: false,
            },
            telemetry: TelemetryDecl {
                recorder_capacity: None,
                timeseries_bucket_ns: Some(SimDuration::from_millis(500).nanos()),
                timeseries_after_build: true,
            },
            faults,
            workload: WorkloadDecl::Fetch {
                size: spec.size,
                lfn: FETCH_LFN.to_string(),
                dst: FETCH_DST.to_string(),
                sources: FETCH_SOURCES.iter().map(|s| s.to_string()).collect(),
                t0_ns: t0.nanos(),
                settle_ns: SimDuration::from_secs(700).nanos(),
            },
        }
    }

    /// The seeded replication chaos soak of [`crate::soak::run_soak`].
    pub fn replication_soak(spec: &SoakSpec) -> Scenario {
        let (seed, faults) = chaos_to_faults(spec.chaos, None);
        Scenario {
            name: "soak".to_string(),
            seed,
            topology: Topology::Flat {
                count: spec.sites,
                prefix: "site".to_string(),
                pad: 0,
                key_seed_base: 100,
                storage: StorageDecl::ClassicTape,
            },
            links: Links {
                default: ProfileDecl::CernAnlProduction,
                workers: spec.workers,
                edges: Vec::new(),
                tiered: None,
            },
            control: Control {
                collection: "soak".to_string(),
                recovery: true,
                breaker: true,
                federation: false,
                fetch_policy: PolicyDecl::Default,
                trust_all: true,
                full_mesh_subscriptions: true,
            },
            telemetry: TelemetryDecl {
                recorder_capacity: Some(8192),
                timeseries_bucket_ns: Some(SimDuration::from_secs(30).nanos()),
                timeseries_after_build: false,
            },
            faults,
            workload: WorkloadDecl::ReplicationSoak {
                rounds: spec.rounds,
                file_size: spec.file_size,
                round_gap_ns: spec.round_gap.nanos(),
                drain_rounds: spec.drain_rounds,
            },
        }
    }

    /// The federated-catalog soak of [`crate::catalog::run_catalog_soak`].
    pub fn catalog_soak(spec: &CatalogSoakSpec) -> Scenario {
        let (seed, faults) = chaos_to_faults(
            spec.chaos,
            Some(CatalogChaosDecl { crashes: 3, losses: 3, delays: 4 }),
        );
        Scenario {
            name: "catalog-soak".to_string(),
            seed,
            topology: Topology::Flat {
                count: spec.sites,
                prefix: "site".to_string(),
                pad: 3,
                key_seed_base: 500,
                storage: StorageDecl::ClassicTape,
            },
            links: Links {
                default: ProfileDecl::CernAnlProduction,
                workers: 1,
                edges: Vec::new(),
                tiered: None,
            },
            control: Control {
                collection: "catalog-soak".to_string(),
                recovery: true,
                breaker: true,
                federation: true,
                fetch_policy: PolicyDecl::Default,
                trust_all: true,
                full_mesh_subscriptions: false,
            },
            telemetry: TelemetryDecl {
                recorder_capacity: Some(16384),
                timeseries_bucket_ns: Some(SimDuration::from_secs(30).nanos()),
                timeseries_after_build: false,
            },
            faults,
            workload: WorkloadDecl::CatalogSoak {
                files_per_site: spec.files_per_site,
                lookup_rounds: spec.lookup_rounds,
                lookups_per_round: spec.lookups_per_round,
                zipf_alpha: spec.zipf_alpha,
                file_size: spec.file_size,
                round_gap_ns: spec.round_gap.nanos(),
            },
        }
    }

    /// The Tier-0/1/2 control-plane soak of [`crate::grid::run_grid_soak`].
    pub fn grid_soak(spec: &GridSoakSpec) -> Scenario {
        Scenario {
            name: "grid-soak".to_string(),
            seed: spec.seed,
            topology: Topology::Tiered {
                tier1: spec.tier1,
                tier2_per_tier1: spec.tier2_per_tier1,
                key_seed_base: 700,
                storage: StorageDecl::ClassicTape,
            },
            links: Links {
                default: ProfileDecl::CernAnlProduction,
                workers: 1,
                edges: Vec::new(),
                tiered: Some(TieredLinks {
                    backbone: ProfileDecl::Clean {
                        rate_bps: 155_000_000,
                        one_way_us: 25_000,
                        queue: 256,
                    },
                    regional: ProfileDecl::Clean {
                        rate_bps: 100_000_000,
                        one_way_us: 5_000,
                        queue: 128,
                    },
                }),
            },
            control: Control {
                collection: "grid-soak".to_string(),
                recovery: true,
                breaker: true,
                federation: true,
                fetch_policy: PolicyDecl::Default,
                trust_all: true,
                full_mesh_subscriptions: false,
            },
            telemetry: TelemetryDecl {
                recorder_capacity: Some(16384),
                timeseries_bucket_ns: None,
                timeseries_after_build: false,
            },
            faults: Faults::None,
            workload: WorkloadDecl::GridSoak {
                files_per_site: spec.files_per_site,
                rounds: spec.rounds,
                ops_per_round: spec.ops_per_round,
                zipf_alpha: spec.zipf_alpha,
                file_size: spec.file_size,
                round_gap_ns: spec.round_gap.nanos(),
            },
        }
    }
}

fn site(name: &str, org: &str, key_seed: u64) -> SiteDecl {
    SiteDecl {
        name: name.to_string(),
        org: org.to_string(),
        key_seed,
        pool_capacity: None,
        storage: StorageDecl::ClassicTape,
    }
}

fn edge(a: &str, b: &str, profile: ProfileDecl) -> EdgeDecl {
    EdgeDecl { a: a.to_string(), b: b.to_string(), profile }
}

fn chaos_to_faults(chaos: ChaosMode, catalog: Option<CatalogChaosDecl>) -> (u64, Faults) {
    match chaos {
        ChaosMode::Off => (0, Faults::None),
        ChaosMode::EmptySchedule => (0, Faults::Empty),
        ChaosMode::Seeded(seed) => (seed, Faults::Seeded { catalog_chaos: catalog }),
    }
}

// ---------------------------------------------------------------------------
// Spec reconstruction (the inverse of the builtin constructors), used by
// the `figures` sweeps that vary one knob around a scenario base.
// ---------------------------------------------------------------------------

impl Scenario {
    /// The [`ChaosMode`] this scenario's fault section encodes, if any.
    pub fn chaos_mode(&self) -> Result<ChaosMode, ScenarioError> {
        match &self.faults {
            Faults::None => Ok(ChaosMode::Off),
            Faults::Empty => Ok(ChaosMode::EmptySchedule),
            Faults::Seeded { .. } => Ok(ChaosMode::Seeded(self.seed)),
            Faults::Timeline { .. } => Err(ScenarioError::Workload(
                "this workload expects `none`, `empty`, or `seeded` faults; \
                 explicit timelines only drive the fetch workload"
                    .to_string(),
            )),
        }
    }

    /// Recover a [`FetchSpec`] from a fetch scenario.
    pub fn fetch_spec(&self) -> Result<FetchSpec, ScenarioError> {
        let WorkloadDecl::Fetch { size, .. } = &self.workload else {
            return Err(wrong_workload("fetch", &self.workload));
        };
        Ok(FetchSpec {
            size: *size,
            policy: self.control.fetch_policy.to_policy().unwrap_or(FetchPolicy::SingleSource),
            crash_fastest: matches!(&self.faults, Faults::Timeline { events } if !events.is_empty()),
            seed: self.seed,
        })
    }

    /// Recover a [`SoakSpec`] from a replication-soak scenario.
    pub fn soak_spec(&self) -> Result<SoakSpec, ScenarioError> {
        let WorkloadDecl::ReplicationSoak { rounds, file_size, round_gap_ns, drain_rounds } =
            &self.workload
        else {
            return Err(wrong_workload("replication_soak", &self.workload));
        };
        Ok(SoakSpec {
            sites: self.topology.site_names().len(),
            rounds: *rounds,
            file_size: *file_size,
            round_gap: SimDuration::from_nanos(*round_gap_ns),
            drain_rounds: *drain_rounds,
            chaos: self.chaos_mode()?,
            workers: self.links.workers,
        })
    }

    /// Recover a [`CatalogSoakSpec`] from a catalog-soak scenario.
    pub fn catalog_spec(&self) -> Result<CatalogSoakSpec, ScenarioError> {
        let WorkloadDecl::CatalogSoak {
            files_per_site,
            lookup_rounds,
            lookups_per_round,
            zipf_alpha,
            file_size,
            round_gap_ns,
        } = &self.workload
        else {
            return Err(wrong_workload("catalog_soak", &self.workload));
        };
        Ok(CatalogSoakSpec {
            sites: self.topology.site_names().len(),
            files_per_site: *files_per_site,
            lookup_rounds: *lookup_rounds,
            lookups_per_round: *lookups_per_round,
            zipf_alpha: *zipf_alpha,
            file_size: *file_size,
            round_gap: SimDuration::from_nanos(*round_gap_ns),
            chaos: self.chaos_mode()?,
        })
    }

    /// Recover a [`GridSoakSpec`] from a grid-soak scenario (requires the
    /// tiered topology).
    pub fn grid_spec(&self) -> Result<GridSoakSpec, ScenarioError> {
        let WorkloadDecl::GridSoak {
            files_per_site,
            rounds,
            ops_per_round,
            zipf_alpha,
            file_size,
            round_gap_ns,
        } = &self.workload
        else {
            return Err(wrong_workload("grid_soak", &self.workload));
        };
        let Topology::Tiered { tier1, tier2_per_tier1, .. } = &self.topology else {
            return Err(ScenarioError::Reference(
                "a grid_soak spec needs the `tiered` topology \
                 (`{\"kind\": \"tiered\", ...}`)"
                    .to_string(),
            ));
        };
        Ok(GridSoakSpec {
            tier1: *tier1,
            tier2_per_tier1: *tier2_per_tier1,
            files_per_site: *files_per_site,
            rounds: *rounds,
            ops_per_round: *ops_per_round,
            zipf_alpha: *zipf_alpha,
            file_size: *file_size,
            round_gap: SimDuration::from_nanos(*round_gap_ns),
            seed: self.seed,
        })
    }

    /// Replace the installed fetch policy (for the `figures fetch` sweep).
    pub fn with_policy(mut self, policy: FetchPolicy) -> Scenario {
        self.control.fetch_policy = match policy {
            FetchPolicy::SingleSource => PolicyDecl::Single,
            FetchPolicy::MultiSource { max_sources, min_chunk } => {
                PolicyDecl::Multi { max_sources, min_chunk }
            }
        };
        self
    }

    /// The canonical mid-fetch crash: the first source dies 3 s into the
    /// measured window and restarts 600 s later (for the `figures fetch`
    /// crash variant; matches [`FetchSpec::crash_fastest`]).
    pub fn with_fastest_source_crash(mut self) -> Result<Scenario, ScenarioError> {
        let WorkloadDecl::Fetch { sources, t0_ns, .. } = &self.workload else {
            return Err(wrong_workload("fetch", &self.workload));
        };
        let fastest = sources
            .first()
            .ok_or_else(|| {
                ScenarioError::Reference("fetch workload has no sources to crash".to_string())
            })?
            .clone();
        self.faults = Faults::Timeline {
            events: vec![
                TimelineEvent {
                    at_ns: t0_ns + SimDuration::from_secs(3).nanos(),
                    event: EventDecl::SiteDown { site: fastest.clone() },
                },
                TimelineEvent {
                    at_ns: t0_ns + SimDuration::from_secs(600).nanos(),
                    event: EventDecl::SiteUp { site: fastest },
                },
            ],
        };
        Ok(self)
    }

    /// The striped multi-source policy used across the figures.
    pub fn with_striped_policy(self) -> Scenario {
        self.with_policy(striped_policy())
    }
}

fn wrong_workload(want: &str, got: &WorkloadDecl) -> ScenarioError {
    ScenarioError::Workload(format!(
        "this runner needs a `{want}` workload, but the scenario declares `{}`",
        got.kind()
    ))
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

impl Scenario {
    /// Cross-reference checks over a structurally valid scenario. Every
    /// failure names what is wrong and what would fix it.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let names = self.topology.site_names();
        let known = |n: &str| names.iter().any(|k| k == n);
        let known_list = || {
            let shown: Vec<&str> = names.iter().take(8).map(String::as_str).collect();
            let more = if names.len() > 8 { ", ..." } else { "" };
            format!("{}{}", shown.join(", "), more)
        };
        if names.is_empty() {
            return Err(ScenarioError::Reference("topology declares no sites".to_string()));
        }
        {
            let mut seen = std::collections::BTreeSet::new();
            for n in &names {
                if !seen.insert(n) {
                    return Err(ScenarioError::Reference(format!(
                        "topology declares site `{n}` more than once"
                    )));
                }
            }
        }
        if self.links.workers == 0 {
            return Err(ScenarioError::Schema("links.workers must be at least 1".to_string()));
        }
        for (i, e) in self.links.edges.iter().enumerate() {
            for end in [&e.a, &e.b] {
                if !known(end) {
                    return Err(ScenarioError::Reference(format!(
                        "links.edges[{i}] references site `{end}` which is not in the \
                         topology (known sites: {})",
                        known_list()
                    )));
                }
            }
        }
        if self.links.tiered.is_some() && !matches!(self.topology, Topology::Tiered { .. }) {
            return Err(ScenarioError::Reference(
                "links.tiered requires the `tiered` topology (it wires t0↔t1 and t1↔t2 \
                 pairs that only exist there)"
                    .to_string(),
            ));
        }
        if let Faults::Timeline { events } = &self.faults {
            for (i, ev) in events.iter().enumerate() {
                let sites: Vec<&String> = match &ev.event {
                    EventDecl::SiteDown { site } | EventDecl::SiteUp { site } => vec![site],
                    EventDecl::LinkDown { from, to, .. } | EventDecl::LinkUp { from, to, .. } => {
                        vec![from, to]
                    }
                };
                for s in sites {
                    if !known(s) {
                        return Err(ScenarioError::Reference(format!(
                            "faults.events[{i}] references site `{s}` which is not in the \
                             topology (known sites: {})",
                            known_list()
                        )));
                    }
                }
            }
        }
        if let Faults::Seeded { catalog_chaos: Some(_) } = &self.faults {
            if !self.control.federation {
                return Err(ScenarioError::Reference(
                    "faults.catalog_chaos targets RLI nodes, which only exist with \
                     control.federation = true"
                        .to_string(),
                ));
            }
        }
        match &self.workload {
            WorkloadDecl::Fetch { dst, sources, .. } => {
                if sources.is_empty() {
                    return Err(ScenarioError::Reference(
                        "workload.sources must name at least one source site".to_string(),
                    ));
                }
                for s in sources.iter().chain(std::iter::once(dst)) {
                    if !known(s) {
                        return Err(ScenarioError::Reference(format!(
                            "workload references site `{s}` which is not in the topology \
                             (known sites: {})",
                            known_list()
                        )));
                    }
                }
                if sources.iter().any(|s| s == dst) {
                    return Err(ScenarioError::Reference(format!(
                        "workload.dst `{dst}` also appears in workload.sources; a site \
                         cannot fetch from itself"
                    )));
                }
            }
            WorkloadDecl::CatalogSoak { zipf_alpha, .. }
            | WorkloadDecl::GridSoak { zipf_alpha, .. } => {
                if !zipf_alpha.is_finite() || *zipf_alpha <= 0.0 {
                    return Err(ScenarioError::Schema(format!(
                        "workload.zipf_alpha must be a finite positive number, got {zipf_alpha}"
                    )));
                }
                if matches!(self.workload, WorkloadDecl::CatalogSoak { .. })
                    && !self.control.federation
                {
                    return Err(ScenarioError::Reference(
                        "a catalog_soak workload exercises the federation ladder; set \
                         control.federation = true"
                            .to_string(),
                    ));
                }
            }
            WorkloadDecl::ReplicationSoak { .. } => {}
        }
        Ok(())
    }

    /// Compile the fault section into the schedule the builder installs,
    /// plus its debug rendering (empty for [`Faults::None`]).
    pub(crate) fn fault_schedule(&self, names: &[String]) -> (Option<FaultSchedule>, String) {
        match &self.faults {
            Faults::None => (None, String::new()),
            Faults::Empty => (Some(FaultSchedule::new()), String::new()),
            Faults::Seeded { catalog_chaos } => {
                let mut plan = ChaosPlan::new(self.seed, names);
                if let Some(c) = catalog_chaos {
                    // The RLI topology is a pure function of the site set,
                    // so a throwaway federation names the chaos targets.
                    let rli_nodes =
                        FederatedCatalog::new(names, FederationConfig::default()).node_names();
                    plan = plan.with_catalog_chaos(
                        &rli_nodes,
                        c.crashes as u32,
                        c.losses as u32,
                        c.delays as u32,
                    );
                }
                let schedule = plan.schedule();
                let debug = format!("{schedule}");
                (Some(schedule), debug)
            }
            Faults::Timeline { events } => {
                let mut schedule = FaultSchedule::new();
                for ev in events {
                    schedule.push(
                        SimTime::ZERO + SimDuration::from_nanos(ev.at_ns),
                        ev.event.to_event(),
                    );
                }
                (Some(schedule), String::new())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loading and saving
// ---------------------------------------------------------------------------

impl Scenario {
    /// Read, parse, and validate a scenario file.
    pub fn load(path: &str) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io { path: path.to_string(), message: e.to_string() })?;
        Self::from_json_str(&text)
    }

    /// Parse and validate scenario JSON.
    pub fn from_json_str(text: &str) -> Result<Scenario, ScenarioError> {
        let value: Value = json_parse(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        let scenario = parse::scenario(&value)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Canonical pretty-printed JSON; `from_json_str` of this text yields
    /// an identical scenario (the round-trip contract).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization is infallible")
    }
}

/// Parse raw JSON text into a [`Value`] (the shim's `from_str` needs a
/// `Deserialize` target, and `Value` itself is the target here).
fn json_parse(text: &str) -> Result<Value, DeError> {
    struct Raw(Value);
    impl Deserialize for Raw {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(Raw(v.clone()))
        }
    }
    serde_json::from_str::<Raw>(text).map(|r| r.0).map_err(DeError::custom)
}

impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        ser::scenario(self)
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        parse::scenario(v).map_err(DeError::custom)
    }
}

mod parse;
mod ser;

#[cfg(test)]
mod tests;
