//! Scenario → grid compilation: one deterministic assembly path shared by
//! every scenario-driven runner. The compiled result is exactly what the
//! hard-coded constructors used to produce: a built [`Grid`], its
//! [`Registry`], the ordered site names, and the installed fault
//! schedule's debug rendering.

use gdmp::prelude::*;
use gdmp::recovery::BackoffRetry;
use std::result::Result;

use super::{Scenario, ScenarioError, Topology};

pub(super) struct Compiled {
    pub grid: Grid,
    pub registry: Registry,
    pub names: Vec<String>,
    pub schedule_debug: String,
}

/// Validate and build. The builder application order is fixed by
/// [`gdmp::GridBuilder::build`]; the only order-sensitive steps here are
/// the ones the hard-coded runners sequenced by hand — time-series
/// enablement relative to `build()` and the post-build tiered overlay.
pub(super) fn assemble(scenario: &Scenario) -> Result<Compiled, ScenarioError> {
    scenario.validate()?;
    let names = scenario.topology.site_names();

    let registry = match scenario.telemetry.recorder_capacity {
        Some(capacity) => Registry::with_recorder_capacity(capacity),
        None => Registry::new(),
    };
    if let Some(bucket) = scenario.telemetry.timeseries_bucket_ns {
        if !scenario.telemetry.timeseries_after_build {
            registry.enable_timeseries(bucket);
        }
    }

    let mut builder = Grid::builder(&scenario.control.collection)
        .telemetry_sink(registry.clone())
        .default_profile(scenario.links.default.to_profile().with_workers(scenario.links.workers));
    for edge in &scenario.links.edges {
        builder = builder.profile(&edge.a, &edge.b, edge.profile.to_profile());
    }
    if scenario.control.recovery {
        builder = builder.recovery(Box::new(BackoffRetry::new(scenario.seed)));
    }
    if scenario.control.breaker {
        builder = builder.breaker(BreakerConfig::default());
    }
    if let Some(policy) = scenario.control.fetch_policy.to_policy() {
        builder = builder.fetch_policy(policy);
    }
    if scenario.control.federation {
        builder = builder.federation(FederationConfig::default());
    }
    for cfg in scenario.topology.site_configs() {
        builder = builder.site(cfg);
    }
    if scenario.control.trust_all {
        builder = builder.trust_all();
    }
    if scenario.control.full_mesh_subscriptions {
        for a in &names {
            for b in &names {
                if a != b {
                    builder = builder.subscription(a, b);
                }
            }
        }
    }
    let (schedule, schedule_debug) = scenario.fault_schedule(&names);
    if let Some(schedule) = schedule {
        builder = builder.fault_schedule(schedule);
    }
    let mut grid = builder.build();

    // Tiered overlay after build, in region order — byte-compatible with
    // the hand-rolled Tier-0/1/2 wiring in `crate::grid`.
    if let Some(tiered) = &scenario.links.tiered {
        let Topology::Tiered { tier1, tier2_per_tier1, .. } = &scenario.topology else {
            unreachable!("validate() rejects tiered links on non-tiered topologies");
        };
        let t0 = &names[0];
        for r in 0..*tier1 {
            let t1 = names[1 + r * (1 + tier2_per_tier1)].clone();
            grid.set_profile(t0, &t1, tiered.backbone.to_profile());
            grid.set_profile(&t1, t0, tiered.backbone.to_profile());
            for s in 0..*tier2_per_tier1 {
                let t2 = &names[1 + r * (1 + tier2_per_tier1) + 1 + s];
                grid.set_profile(&t1, t2, tiered.regional.to_profile());
                grid.set_profile(t2, &t1, tiered.regional.to_profile());
            }
        }
    }

    if let Some(bucket) = scenario.telemetry.timeseries_bucket_ns {
        if scenario.telemetry.timeseries_after_build {
            registry.enable_timeseries(bucket);
        }
    }

    Ok(Compiled { grid, registry, names, schedule_debug })
}

/// Chaos faults excluded: the horizon of the installed schedule, used by
/// the soak drain phases.
pub(super) fn fault_horizon(grid: &Grid) -> SimTime {
    grid.chaos_state().schedule().horizon()
}
