//! Strict structural parsing of scenario JSON. Every object is checked
//! against its allowed field set — an unknown key is an error naming the
//! key, the section, and the accepted fields — and every value is
//! type-checked with its JSON path in the message.

use serde::Value;

use super::{
    CatalogChaosDecl, Control, EdgeDecl, EventDecl, Faults, Links, PolicyDecl, ProfileDecl,
    Scenario, ScenarioError, SiteDecl, StorageDecl, TelemetryDecl, TieredLinks, TimelineEvent,
    Topology, WorkloadDecl,
};

type Fields = [(String, Value)];

fn obj<'v>(v: &'v Value, ctx: &str) -> Result<&'v Fields, ScenarioError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(ScenarioError::Schema(format!(
            "{ctx} must be a JSON object, got {}",
            kind_of(other)
        ))),
    }
}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Reject any key outside `allowed`, naming the section and the schema.
fn reject_unknown(fields: &Fields, allowed: &[&str], ctx: &str) -> Result<(), ScenarioError> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::Schema(format!(
                "unknown field `{key}` in {ctx} (accepted fields: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn get<'v>(fields: &'v Fields, key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'v>(fields: &'v Fields, key: &str, ctx: &str) -> Result<&'v Value, ScenarioError> {
    get(fields, key)
        .ok_or_else(|| ScenarioError::Schema(format!("missing required field `{key}` in {ctx}")))
}

fn str_field(fields: &Fields, key: &str, ctx: &str) -> Result<String, ScenarioError> {
    match require(fields, key, ctx)? {
        Value::String(s) => Ok(s.clone()),
        other => Err(type_err(key, ctx, "string", other)),
    }
}

fn u64_field(fields: &Fields, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    u64_value(require(fields, key, ctx)?, key, ctx)
}

fn u64_value(v: &Value, key: &str, ctx: &str) -> Result<u64, ScenarioError> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        other => Err(type_err(key, ctx, "non-negative integer", other)),
    }
}

fn usize_field(fields: &Fields, key: &str, ctx: &str) -> Result<usize, ScenarioError> {
    Ok(u64_field(fields, key, ctx)? as usize)
}

fn f64_field(fields: &Fields, key: &str, ctx: &str) -> Result<f64, ScenarioError> {
    match require(fields, key, ctx)? {
        Value::Float(f) => Ok(*f),
        Value::UInt(n) => Ok(*n as f64),
        Value::Int(n) => Ok(*n as f64),
        other => Err(type_err(key, ctx, "number", other)),
    }
}

/// Optional field: absent or `null` both mean "not set".
fn opt<'v>(fields: &'v Fields, key: &str) -> Option<&'v Value> {
    match get(fields, key) {
        None | Some(Value::Null) => None,
        Some(v) => Some(v),
    }
}

fn type_err(key: &str, ctx: &str, want: &str, got: &Value) -> ScenarioError {
    ScenarioError::Schema(format!("field `{key}` in {ctx} must be a {want}, got {}", kind_of(got)))
}

/// Every tagged union in the schema uses a `kind` discriminator.
fn kind_field<'v>(
    fields: &'v Fields,
    ctx: &str,
    accepted: &[&str],
) -> Result<&'v str, ScenarioError> {
    match require(fields, "kind", ctx)? {
        Value::String(s) => {
            if accepted.contains(&s.as_str()) {
                Ok(s)
            } else {
                Err(ScenarioError::Schema(format!(
                    "unknown kind `{s}` in {ctx} (accepted kinds: {})",
                    accepted.join(", ")
                )))
            }
        }
        other => Err(type_err("kind", ctx, "string", other)),
    }
}

pub(super) fn scenario(v: &Value) -> Result<Scenario, ScenarioError> {
    let fields = obj(v, "the scenario")?;
    reject_unknown(
        fields,
        &["name", "seed", "topology", "links", "control", "telemetry", "faults", "workload"],
        "the scenario",
    )?;
    Ok(Scenario {
        name: str_field(fields, "name", "the scenario")?,
        seed: u64_field(fields, "seed", "the scenario")?,
        topology: topology(require(fields, "topology", "the scenario")?)?,
        links: links(require(fields, "links", "the scenario")?)?,
        control: control(require(fields, "control", "the scenario")?)?,
        telemetry: telemetry(require(fields, "telemetry", "the scenario")?)?,
        faults: faults(require(fields, "faults", "the scenario")?)?,
        workload: workload(require(fields, "workload", "the scenario")?)?,
    })
}

fn topology(v: &Value) -> Result<Topology, ScenarioError> {
    let ctx = "`topology`";
    let fields = obj(v, ctx)?;
    match kind_field(fields, ctx, &["explicit", "flat", "tiered"])? {
        "explicit" => {
            reject_unknown(fields, &["kind", "sites"], ctx)?;
            let sites = match require(fields, "sites", ctx)? {
                Value::Array(items) => items
                    .iter()
                    .enumerate()
                    .map(|(i, s)| site_decl(s, i))
                    .collect::<Result<Vec<_>, _>>()?,
                other => return Err(type_err("sites", ctx, "array", other)),
            };
            Ok(Topology::Explicit { sites })
        }
        "flat" => {
            reject_unknown(
                fields,
                &["kind", "count", "prefix", "pad", "key_seed_base", "storage"],
                ctx,
            )?;
            Ok(Topology::Flat {
                count: usize_field(fields, "count", ctx)?,
                prefix: str_field(fields, "prefix", ctx)?,
                pad: match opt(fields, "pad") {
                    Some(v) => u64_value(v, "pad", ctx)? as usize,
                    None => 0,
                },
                key_seed_base: u64_field(fields, "key_seed_base", ctx)?,
                storage: storage_or_default(fields, ctx)?,
            })
        }
        "tiered" => {
            reject_unknown(
                fields,
                &["kind", "tier1", "tier2_per_tier1", "key_seed_base", "storage"],
                ctx,
            )?;
            Ok(Topology::Tiered {
                tier1: usize_field(fields, "tier1", ctx)?,
                tier2_per_tier1: usize_field(fields, "tier2_per_tier1", ctx)?,
                key_seed_base: u64_field(fields, "key_seed_base", ctx)?,
                storage: storage_or_default(fields, ctx)?,
            })
        }
        _ => unreachable!("kind_field filters"),
    }
}

fn site_decl(v: &Value, i: usize) -> Result<SiteDecl, ScenarioError> {
    let ctx = format!("`topology.sites[{i}]`");
    let fields = obj(v, &ctx)?;
    reject_unknown(fields, &["name", "org", "key_seed", "pool_capacity", "storage"], &ctx)?;
    Ok(SiteDecl {
        name: str_field(fields, "name", &ctx)?,
        org: str_field(fields, "org", &ctx)?,
        key_seed: u64_field(fields, "key_seed", &ctx)?,
        pool_capacity: match opt(fields, "pool_capacity") {
            Some(v) => Some(u64_value(v, "pool_capacity", &ctx)?),
            None => None,
        },
        storage: storage_or_default(fields, &ctx)?,
    })
}

fn storage_or_default(fields: &Fields, ctx: &str) -> Result<StorageDecl, ScenarioError> {
    match opt(fields, "storage") {
        Some(v) => storage(v, ctx),
        None => Ok(StorageDecl::ClassicTape),
    }
}

fn storage(v: &Value, parent: &str) -> Result<StorageDecl, ScenarioError> {
    let ctx = format!("{parent}.storage");
    let fields = obj(v, &ctx)?;
    match kind_field(fields, &ctx, &["classic_tape", "tape", "disk_array", "object_store"])? {
        "classic_tape" => {
            reject_unknown(fields, &["kind"], &ctx)?;
            Ok(StorageDecl::ClassicTape)
        }
        "tape" => {
            reject_unknown(
                fields,
                &[
                    "kind",
                    "mount_ms",
                    "seek_bytes_per_sec",
                    "stream_bytes_per_sec",
                    "drives",
                    "tape_capacity",
                ],
                &ctx,
            )?;
            Ok(StorageDecl::Tape {
                mount_ms: u64_field(fields, "mount_ms", &ctx)?,
                seek_bytes_per_sec: u64_field(fields, "seek_bytes_per_sec", &ctx)?,
                stream_bytes_per_sec: u64_field(fields, "stream_bytes_per_sec", &ctx)?,
                drives: usize_field(fields, "drives", &ctx)?,
                tape_capacity: u64_field(fields, "tape_capacity", &ctx)?,
            })
        }
        "disk_array" => {
            reject_unknown(
                fields,
                &["kind", "capacity", "op_latency_us", "stream_bytes_per_sec"],
                &ctx,
            )?;
            Ok(StorageDecl::DiskArray {
                capacity: u64_field(fields, "capacity", &ctx)?,
                op_latency_us: u64_field(fields, "op_latency_us", &ctx)?,
                stream_bytes_per_sec: u64_field(fields, "stream_bytes_per_sec", &ctx)?,
            })
        }
        "object_store" => {
            reject_unknown(
                fields,
                &["kind", "rtt_us", "stream_bytes_per_sec", "cost_per_request", "cost_per_mib"],
                &ctx,
            )?;
            Ok(StorageDecl::ObjectStore {
                rtt_us: u64_field(fields, "rtt_us", &ctx)?,
                stream_bytes_per_sec: u64_field(fields, "stream_bytes_per_sec", &ctx)?,
                cost_per_request: u64_field(fields, "cost_per_request", &ctx)?,
                cost_per_mib: u64_field(fields, "cost_per_mib", &ctx)?,
            })
        }
        _ => unreachable!("kind_field filters"),
    }
}

fn links(v: &Value) -> Result<Links, ScenarioError> {
    let ctx = "`links`";
    let fields = obj(v, ctx)?;
    reject_unknown(fields, &["default", "workers", "edges", "tiered"], ctx)?;
    let edges = match opt(fields, "edges") {
        Some(Value::Array(items)) => {
            items.iter().enumerate().map(|(i, e)| edge(e, i)).collect::<Result<Vec<_>, _>>()?
        }
        Some(other) => return Err(type_err("edges", ctx, "array", other)),
        None => Vec::new(),
    };
    Ok(Links {
        default: profile(require(fields, "default", ctx)?, "`links.default`")?,
        workers: match opt(fields, "workers") {
            Some(v) => u64_value(v, "workers", ctx)? as usize,
            None => 1,
        },
        edges,
        tiered: match opt(fields, "tiered") {
            Some(v) => Some(tiered_links(v)?),
            None => None,
        },
    })
}

fn edge(v: &Value, i: usize) -> Result<EdgeDecl, ScenarioError> {
    let ctx = format!("`links.edges[{i}]`");
    let fields = obj(v, &ctx)?;
    reject_unknown(fields, &["a", "b", "profile"], &ctx)?;
    Ok(EdgeDecl {
        a: str_field(fields, "a", &ctx)?,
        b: str_field(fields, "b", &ctx)?,
        profile: profile(require(fields, "profile", &ctx)?, &format!("{ctx}.profile"))?,
    })
}

fn tiered_links(v: &Value) -> Result<TieredLinks, ScenarioError> {
    let ctx = "`links.tiered`";
    let fields = obj(v, ctx)?;
    reject_unknown(fields, &["backbone", "regional"], ctx)?;
    Ok(TieredLinks {
        backbone: profile(require(fields, "backbone", ctx)?, "`links.tiered.backbone`")?,
        regional: profile(require(fields, "regional", ctx)?, "`links.tiered.regional`")?,
    })
}

fn profile(v: &Value, ctx: &str) -> Result<ProfileDecl, ScenarioError> {
    let fields = obj(v, ctx)?;
    match kind_field(fields, ctx, &["cern_anl_production", "clean"])? {
        "cern_anl_production" => {
            reject_unknown(fields, &["kind"], ctx)?;
            Ok(ProfileDecl::CernAnlProduction)
        }
        "clean" => {
            reject_unknown(fields, &["kind", "rate_bps", "one_way_us", "queue"], ctx)?;
            Ok(ProfileDecl::Clean {
                rate_bps: u64_field(fields, "rate_bps", ctx)?,
                one_way_us: u64_field(fields, "one_way_us", ctx)?,
                queue: usize_field(fields, "queue", ctx)?,
            })
        }
        _ => unreachable!("kind_field filters"),
    }
}

fn control(v: &Value) -> Result<Control, ScenarioError> {
    let ctx = "`control`";
    let fields = obj(v, ctx)?;
    reject_unknown(
        fields,
        &[
            "collection",
            "recovery",
            "breaker",
            "federation",
            "fetch_policy",
            "trust_all",
            "full_mesh_subscriptions",
        ],
        ctx,
    )?;
    let flag = |key: &str, default: bool| -> Result<bool, ScenarioError> {
        match opt(fields, key) {
            Some(Value::Bool(b)) => Ok(*b),
            Some(other) => Err(type_err(key, ctx, "bool", other)),
            None => Ok(default),
        }
    };
    Ok(Control {
        collection: str_field(fields, "collection", ctx)?,
        recovery: flag("recovery", true)?,
        breaker: flag("breaker", true)?,
        federation: flag("federation", false)?,
        fetch_policy: match opt(fields, "fetch_policy") {
            Some(v) => policy(v)?,
            None => PolicyDecl::Default,
        },
        trust_all: flag("trust_all", true)?,
        full_mesh_subscriptions: flag("full_mesh_subscriptions", false)?,
    })
}

fn policy(v: &Value) -> Result<PolicyDecl, ScenarioError> {
    let ctx = "`control.fetch_policy`";
    let fields = obj(v, ctx)?;
    match kind_field(fields, ctx, &["default", "single", "multi"])? {
        "default" => {
            reject_unknown(fields, &["kind"], ctx)?;
            Ok(PolicyDecl::Default)
        }
        "single" => {
            reject_unknown(fields, &["kind"], ctx)?;
            Ok(PolicyDecl::Single)
        }
        "multi" => {
            reject_unknown(fields, &["kind", "max_sources", "min_chunk"], ctx)?;
            Ok(PolicyDecl::Multi {
                max_sources: usize_field(fields, "max_sources", ctx)?,
                min_chunk: u64_field(fields, "min_chunk", ctx)?,
            })
        }
        _ => unreachable!("kind_field filters"),
    }
}

fn telemetry(v: &Value) -> Result<TelemetryDecl, ScenarioError> {
    let ctx = "`telemetry`";
    let fields = obj(v, ctx)?;
    reject_unknown(
        fields,
        &["recorder_capacity", "timeseries_bucket_ns", "timeseries_after_build"],
        ctx,
    )?;
    Ok(TelemetryDecl {
        recorder_capacity: match opt(fields, "recorder_capacity") {
            Some(v) => Some(u64_value(v, "recorder_capacity", ctx)? as usize),
            None => None,
        },
        timeseries_bucket_ns: match opt(fields, "timeseries_bucket_ns") {
            Some(v) => Some(u64_value(v, "timeseries_bucket_ns", ctx)?),
            None => None,
        },
        timeseries_after_build: match opt(fields, "timeseries_after_build") {
            Some(Value::Bool(b)) => *b,
            Some(other) => return Err(type_err("timeseries_after_build", ctx, "bool", other)),
            None => false,
        },
    })
}

fn faults(v: &Value) -> Result<Faults, ScenarioError> {
    let ctx = "`faults`";
    let fields = obj(v, ctx)?;
    match kind_field(fields, ctx, &["none", "empty", "seeded", "timeline"])? {
        "none" => {
            reject_unknown(fields, &["kind"], ctx)?;
            Ok(Faults::None)
        }
        "empty" => {
            reject_unknown(fields, &["kind"], ctx)?;
            Ok(Faults::Empty)
        }
        "seeded" => {
            reject_unknown(fields, &["kind", "catalog_chaos"], ctx)?;
            let catalog_chaos = match opt(fields, "catalog_chaos") {
                Some(v) => {
                    let cctx = "`faults.catalog_chaos`";
                    let cf = obj(v, cctx)?;
                    reject_unknown(cf, &["crashes", "losses", "delays"], cctx)?;
                    Some(CatalogChaosDecl {
                        crashes: usize_field(cf, "crashes", cctx)?,
                        losses: usize_field(cf, "losses", cctx)?,
                        delays: usize_field(cf, "delays", cctx)?,
                    })
                }
                None => None,
            };
            Ok(Faults::Seeded { catalog_chaos })
        }
        "timeline" => {
            reject_unknown(fields, &["kind", "events"], ctx)?;
            let events = match require(fields, "events", ctx)? {
                Value::Array(items) => items
                    .iter()
                    .enumerate()
                    .map(|(i, e)| timeline_event(e, i))
                    .collect::<Result<Vec<_>, _>>()?,
                other => return Err(type_err("events", ctx, "array", other)),
            };
            Ok(Faults::Timeline { events })
        }
        _ => unreachable!("kind_field filters"),
    }
}

fn timeline_event(v: &Value, i: usize) -> Result<TimelineEvent, ScenarioError> {
    let ctx = format!("`faults.events[{i}]`");
    let fields = obj(v, &ctx)?;
    let at_ns = u64_field(fields, "at_ns", &ctx)?;
    let event = match kind_field(fields, &ctx, &["site_down", "site_up", "link_down", "link_up"])? {
        "site_down" => {
            reject_unknown(fields, &["at_ns", "kind", "site"], &ctx)?;
            EventDecl::SiteDown { site: str_field(fields, "site", &ctx)? }
        }
        "site_up" => {
            reject_unknown(fields, &["at_ns", "kind", "site"], &ctx)?;
            EventDecl::SiteUp { site: str_field(fields, "site", &ctx)? }
        }
        dir @ ("link_down" | "link_up") => {
            reject_unknown(fields, &["at_ns", "kind", "from", "to", "both_ways"], &ctx)?;
            let from = str_field(fields, "from", &ctx)?;
            let to = str_field(fields, "to", &ctx)?;
            let both_ways = match opt(fields, "both_ways") {
                Some(Value::Bool(b)) => *b,
                Some(other) => return Err(type_err("both_ways", &ctx, "bool", other)),
                None => false,
            };
            if dir == "link_down" {
                EventDecl::LinkDown { from, to, both_ways }
            } else {
                EventDecl::LinkUp { from, to, both_ways }
            }
        }
        _ => unreachable!("kind_field filters"),
    };
    Ok(TimelineEvent { at_ns, event })
}

fn workload(v: &Value) -> Result<WorkloadDecl, ScenarioError> {
    let ctx = "`workload`";
    let fields = obj(v, ctx)?;
    match kind_field(fields, ctx, &["fetch", "replication_soak", "catalog_soak", "grid_soak"])? {
        "fetch" => {
            reject_unknown(
                fields,
                &["kind", "size", "lfn", "dst", "sources", "t0_ns", "settle_ns"],
                ctx,
            )?;
            let sources = match require(fields, "sources", ctx)? {
                Value::Array(items) => items
                    .iter()
                    .enumerate()
                    .map(|(i, s)| match s {
                        Value::String(s) => Ok(s.clone()),
                        other => Err(type_err(&format!("sources[{i}]"), ctx, "string", other)),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                other => return Err(type_err("sources", ctx, "array", other)),
            };
            Ok(WorkloadDecl::Fetch {
                size: u64_field(fields, "size", ctx)?,
                lfn: str_field(fields, "lfn", ctx)?,
                dst: str_field(fields, "dst", ctx)?,
                sources,
                t0_ns: u64_field(fields, "t0_ns", ctx)?,
                settle_ns: u64_field(fields, "settle_ns", ctx)?,
            })
        }
        "replication_soak" => {
            reject_unknown(
                fields,
                &["kind", "rounds", "file_size", "round_gap_ns", "drain_rounds"],
                ctx,
            )?;
            Ok(WorkloadDecl::ReplicationSoak {
                rounds: usize_field(fields, "rounds", ctx)?,
                file_size: u64_field(fields, "file_size", ctx)?,
                round_gap_ns: u64_field(fields, "round_gap_ns", ctx)?,
                drain_rounds: usize_field(fields, "drain_rounds", ctx)?,
            })
        }
        "catalog_soak" => {
            reject_unknown(
                fields,
                &[
                    "kind",
                    "files_per_site",
                    "lookup_rounds",
                    "lookups_per_round",
                    "zipf_alpha",
                    "file_size",
                    "round_gap_ns",
                ],
                ctx,
            )?;
            Ok(WorkloadDecl::CatalogSoak {
                files_per_site: usize_field(fields, "files_per_site", ctx)?,
                lookup_rounds: usize_field(fields, "lookup_rounds", ctx)?,
                lookups_per_round: usize_field(fields, "lookups_per_round", ctx)?,
                zipf_alpha: f64_field(fields, "zipf_alpha", ctx)?,
                file_size: u64_field(fields, "file_size", ctx)?,
                round_gap_ns: u64_field(fields, "round_gap_ns", ctx)?,
            })
        }
        "grid_soak" => {
            reject_unknown(
                fields,
                &[
                    "kind",
                    "files_per_site",
                    "rounds",
                    "ops_per_round",
                    "zipf_alpha",
                    "file_size",
                    "round_gap_ns",
                ],
                ctx,
            )?;
            Ok(WorkloadDecl::GridSoak {
                files_per_site: usize_field(fields, "files_per_site", ctx)?,
                rounds: usize_field(fields, "rounds", ctx)?,
                ops_per_round: usize_field(fields, "ops_per_round", ctx)?,
                zipf_alpha: f64_field(fields, "zipf_alpha", ctx)?,
                file_size: usize_field(fields, "file_size", ctx)?,
                round_gap_ns: u64_field(fields, "round_gap_ns", ctx)?,
            })
        }
        _ => unreachable!("kind_field filters"),
    }
}
