//! # gdmp-intern — deterministic string interning for the control plane
//!
//! The grid's control plane used to key everything by owned `String`s:
//! `BTreeMap<String, Site>`, `HashMap<(String, String), WanProfile>`,
//! `(String, Option<String>)` fault keys. At hundreds of sites × millions
//! of requests, every map probe allocates and every per-tick name list is
//! a fresh `Vec<String>`. This crate replaces those keys with small `Copy`
//! symbols ([`SiteId`], [`Lfn`]) backed by an append-only [`Interner`].
//!
//! Determinism rules:
//!
//! * ids are assigned in **first-intern order** and never change — the
//!   same sequence of `intern` calls yields the same ids on every run;
//! * the table is **append-only**: a name, once interned, resolves to the
//!   same id and string for the table's whole lifetime;
//! * lookups ([`Interner::try_id`], [`SymbolTable::try_id`]) never mutate,
//!   so probing for an unknown name on a hot path cannot perturb ids.
//!
//! Ids are *internal*: strings are materialized only at export boundaries
//! (JSON/TSV/telemetry labels), so serialized output is byte-identical to
//! the string-keyed implementation.
//!
//! Probes are allocation-free: the id map is keyed by `Arc<str>`, which
//! borrows as `str`, so `try_id(&str)` hashes the borrowed name directly.
//! [`Interner::resolve_arc`] hands out a refcount clone of the stored
//! name, letting callers hold a name across `&mut self` calls without
//! copying the bytes.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed index into an [`Interner`] (via [`SymbolTable`]).
pub trait Symbol: Copy + Eq + Ord + Hash + fmt::Debug {
    /// Wrap a raw interner index.
    fn from_index(index: u32) -> Self;
    /// The raw interner index.
    fn index(self) -> u32;
}

/// Interned grid-site name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl Symbol for SiteId {
    fn from_index(index: u32) -> Self {
        SiteId(index)
    }
    fn index(self) -> u32 {
        self.0
    }
}

/// Interned logical file name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lfn(pub u32);

impl Symbol for Lfn {
    fn from_index(index: u32) -> Self {
        Lfn(index)
    }
    fn index(self) -> u32 {
        self.0
    }
}

/// Append-only string interner: first-intern order assigns dense `u32`
/// ids; names round-trip exactly via [`resolve`](Interner::resolve).
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its stable id. Idempotent: an already
    /// known name returns its original id without touching the table.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        let arc: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&arc));
        self.ids.insert(arc, id);
        id
    }

    /// Look up an already interned name without allocating and without
    /// mutating the table. Unknown names return `None`.
    pub fn try_id(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The string a raw id was interned from.
    ///
    /// # Panics
    /// If `id` was never returned by [`intern`](Interner::intern).
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Refcount clone of the stored name — lets callers keep a name alive
    /// across `&mut self` calls without copying the bytes.
    pub fn resolve_arc(&self, id: u32) -> Arc<str> {
        Arc::clone(&self.names[id as usize])
    }

    /// Number of interned names (ids are `0..len`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Immutable snapshot of the id → name mapping, shareable across
    /// structs without borrowing the interner.
    pub fn name_table(&self) -> NameTable {
        NameTable { names: Arc::from(self.names.as_slice()) }
    }
}

/// A typed wrapper over [`Interner`]: the same deterministic append-only
/// table, but ids come back as a chosen [`Symbol`] type so site ids and
/// file ids cannot be mixed up.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable<S: Symbol> {
    inner: Interner,
    _marker: PhantomData<S>,
}

impl<S: Symbol> SymbolTable<S> {
    /// Empty table.
    pub fn new() -> Self {
        SymbolTable { inner: Interner::new(), _marker: PhantomData }
    }

    /// Intern `name` (idempotent, append-only).
    pub fn intern(&mut self, name: &str) -> S {
        S::from_index(self.inner.intern(name))
    }

    /// Allocation-free probe for an already interned name.
    pub fn try_id(&self, name: &str) -> Option<S> {
        self.inner.try_id(name).map(S::from_index)
    }

    /// The string behind a symbol.
    pub fn resolve(&self, sym: S) -> &str {
        self.inner.resolve(sym.index())
    }

    /// Refcount clone of the stored name (see [`Interner::resolve_arc`]).
    pub fn resolve_arc(&self, sym: S) -> Arc<str> {
        self.inner.resolve_arc(sym.index())
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Immutable id → name snapshot (see [`Interner::name_table`]).
    pub fn name_table(&self) -> NameTable {
        self.inner.name_table()
    }
}

/// Cheap immutable snapshot of an interner's id → name mapping. Cloning
/// is one refcount bump; resolving is an index into a shared slice. Used
/// to carry name resolution across struct boundaries (e.g. a lookup plan
/// built by the federation, consumed by the grid) without borrows.
#[derive(Debug, Clone)]
pub struct NameTable {
    names: Arc<[Arc<str>]>,
}

impl NameTable {
    /// The string behind a raw id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// The string behind a typed symbol.
    pub fn resolve_sym<S: Symbol>(&self, sym: S) -> &str {
        self.resolve(sym.index())
    }

    /// Refcount clone of the stored name.
    pub fn resolve_arc(&self, id: u32) -> Arc<str> {
        Arc::clone(&self.names[id as usize])
    }

    /// Number of names in the snapshot.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl Default for NameTable {
    fn default() -> Self {
        NameTable { names: Arc::from([]) }
    }
}

impl fmt::Display for SiteId {
    /// Ids format as their raw index; use the owning table to display the
    /// original name at export boundaries.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

impl fmt::Display for Lfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lfn#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_first_intern_ordered() {
        let mut t = Interner::new();
        assert_eq!(t.intern("cern"), 0);
        assert_eq!(t.intern("anl"), 1);
        assert_eq!(t.intern("lyon"), 2);
        assert_eq!(t.intern("anl"), 1, "re-intern is idempotent");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn resolve_round_trips_exactly() {
        let mut t = Interner::new();
        let names = ["site000", "site001", "rli-leaf-0", "a b/c.dat", ""];
        let ids: Vec<u32> = names.iter().map(|n| t.intern(n)).collect();
        for (name, id) in names.iter().zip(&ids) {
            assert_eq!(t.resolve(*id), *name);
            assert_eq!(&*t.resolve_arc(*id), *name);
            assert_eq!(t.try_id(name), Some(*id));
        }
    }

    #[test]
    fn try_id_never_mutates() {
        let mut t = Interner::new();
        t.intern("cern");
        assert_eq!(t.try_id("ghost"), None);
        assert_eq!(t.len(), 1, "probing an unknown name must not intern it");
        assert_eq!(t.intern("ghost"), 1, "next intern still gets the next id");
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut t = Interner::new();
            for i in 0..100 {
                t.intern(&format!("site{i:03}"));
            }
            (0..100).map(|i| t.resolve(i).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn typed_tables_assign_typed_symbols() {
        let mut sites: SymbolTable<SiteId> = SymbolTable::new();
        let mut lfns: SymbolTable<Lfn> = SymbolTable::new();
        let cern = sites.intern("cern");
        let file = lfns.intern("higgs.dat");
        assert_eq!(cern, SiteId(0));
        assert_eq!(file, Lfn(0));
        assert_eq!(sites.resolve(cern), "cern");
        assert_eq!(lfns.resolve(file), "higgs.dat");
        assert_eq!(sites.try_id("cern"), Some(SiteId(0)));
        assert_eq!(sites.try_id("higgs.dat"), None);
    }

    #[test]
    fn name_table_snapshot_outlives_further_interning() {
        let mut t: SymbolTable<SiteId> = SymbolTable::new();
        let a = t.intern("alpha");
        let snap = t.name_table();
        t.intern("beta");
        assert_eq!(snap.len(), 1, "snapshot is immutable");
        assert_eq!(snap.resolve_sym(a), "alpha");
        assert_eq!(t.name_table().len(), 2);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(SiteId(7).to_string(), "site#7");
        assert_eq!(Lfn(3).to_string(), "lfn#3");
    }
}
