#!/usr/bin/env bash
# Local CI gate. The registry is offline (vendored shims via [patch.crates-io]),
# so every cargo invocation runs with --offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --workspace --release

echo "==> cargo test"
cargo test --offline --workspace -q

echo "CI OK"
