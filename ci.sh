#!/usr/bin/env bash
# Local CI gate. The registry is offline (vendored shims via [patch.crates-io]),
# so every cargo invocation runs with --offline.
#
#   ./ci.sh                fmt + clippy + build + test + benches compile +
#                          the parallel-engine determinism smoke
#   ./ci.sh --bench-smoke  additionally run the simnet perf baseline once,
#                          regenerating BENCH_simnet.json
#   ./ci.sh --chaos-smoke  additionally run the seeded chaos convergence
#                          soak (3 fixed seeds, 5-site grid)
#   ./ci.sh --fetch-smoke  additionally run the multi-source fetch scenario
#                          (striping speedup, crash reassignment, determinism)
#   ./ci.sh --trace-smoke  additionally run the causal-tracing smoke: one
#                          striped fetch must yield connected span trees
#                          whose critical path partitions the latency, with
#                          byte-identical same-seed exports
#   ./ci.sh --catalog-smoke  additionally run the federated-catalog smoke
#                          (release, < 10 s): the gdmp federation flows,
#                          the catalog soak (Off == EmptySchedule, seeded
#                          never-wrong), and the 100+-site acceptance soak
#   ./ci.sh --grid-smoke   additionally run the interned-id grid smoke
#                          (release, < 10 s): the Tier-0/1/2 soak and the
#                          zero-allocation hot-path probes, then `figures
#                          grid --json` twice — the emissions must be
#                          byte-identical
#   ./ci.sh --par-smoke    the sharded-engine determinism smoke alone is
#                          named here for discoverability; it is part of
#                          the default gate (release build, < 10 s): the
#                          fan-out scenario and the fixed-seed simnet
#                          suites must be byte-identical on 2+ workers
#   ./ci.sh --scenario-smoke  the scenario-DSL smoke, also part of the
#                          default gate (release build, < 10 s): load
#                          every committed scenarios/*.json, replay the
#                          quick ones twice, assert invariants + byte-
#                          identical telemetry exports
#   ./ci.sh --bench-compare  additionally diff the deterministic bench
#                          metrics against the committed BENCH_fetch.json /
#                          BENCH_simnet.json baselines; fails on drift.
#                          Tolerance bands (see crates/bench/src/compare.rs):
#                            GDMP_TOL_MBPS_PCT    throughputs/elapsed (5)
#                            GDMP_TOL_EVENTS_PCT  event/byte counts  (10)
#                            GDMP_TOL_SPEEDUP_PCT speedups/reductions (10)
#                            GDMP_TOL_DELTA_ABS   fidelity deltas, pp  (1)
set -euo pipefail
cd "$(dirname "$0")"

bench_smoke=0
chaos_smoke=0
fetch_smoke=0
trace_smoke=0
catalog_smoke=0
grid_smoke=0
bench_compare=0
par_smoke=1      # part of the default gate; the flag exists to name it
scenario_smoke=1 # part of the default gate; the flag exists to name it
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --chaos-smoke) chaos_smoke=1 ;;
    --fetch-smoke) fetch_smoke=1 ;;
    --trace-smoke) trace_smoke=1 ;;
    --catalog-smoke) catalog_smoke=1 ;;
    --grid-smoke) grid_smoke=1 ;;
    --bench-compare) bench_compare=1 ;;
    --par-smoke) par_smoke=1 ;;
    --scenario-smoke) scenario_smoke=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --workspace --release

echo "==> cargo test"
cargo test --offline --workspace -q

echo "==> cargo bench --no-run"
cargo bench --offline --workspace --no-run

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps --quiet

if [[ "$par_smoke" == 1 ]]; then
  echo "==> par smoke: sharded engine byte-identical on 2+ workers"
  cargo test --offline -q --release -p gdmp-simnet --test par_determinism
  cargo test --offline -q --release -p gdmp-workloads --lib fanout::
fi

if [[ "$scenario_smoke" == 1 ]]; then
  echo "==> scenario smoke: committed scenario files load, replay, and stay byte-identical"
  cargo run --offline --release -q -p gdmp-bench --bin scenario_smoke
fi

if [[ "$bench_smoke" == 1 ]]; then
  echo "==> bench smoke: simnet perf baseline"
  cargo run --offline --release -p gdmp-bench --bin bench_simnet
fi

if [[ "$chaos_smoke" == 1 ]]; then
  echo "==> chaos smoke: seeded convergence soak"
  cargo test --offline -q -p gdmp-workloads --test chaos_soak
  cargo test --offline -q -p gdmp --test chaos_recovery
fi

if [[ "$fetch_smoke" == 1 ]]; then
  echo "==> fetch smoke: multi-source striped fetch"
  cargo test --offline -q --release -p gdmp-workloads --lib fetch::
  cargo test --offline -q --release -p gdmp --test schedule_properties
fi

if [[ "$trace_smoke" == 1 ]]; then
  echo "==> trace smoke: span trees + critical path of the striped fetch"
  cargo test --offline -q --release -p gdmp-workloads --test trace_smoke
fi

if [[ "$catalog_smoke" == 1 ]]; then
  echo "==> catalog smoke: federation flows, soak inertness, 100+-site never-wrong"
  cargo test --offline -q --release -p gdmp --test federation_flows
  cargo test --offline -q --release -p gdmp-workloads --lib catalog::
  cargo test --offline -q --release -p gdmp-workloads --test catalog_soak
fi

if [[ "$grid_smoke" == 1 ]]; then
  echo "==> grid smoke: tiered soak, zero-alloc probes, byte-identical figures grid --json"
  cargo test --offline -q --release -p gdmp-workloads --lib grid::
  cargo test --offline -q --release -p gdmp-workloads --test byte_identity
  cargo test --offline -q --release -p gdmp --test control_plane_alloc
  tmp_a=$(mktemp); tmp_b=$(mktemp)
  trap 'rm -f "$tmp_a" "$tmp_b"' EXIT
  cargo run --offline --release -q -p gdmp-bench --bin figures -- grid --json > "$tmp_a"
  cargo run --offline --release -q -p gdmp-bench --bin figures -- grid --json > "$tmp_b"
  cmp "$tmp_a" "$tmp_b"
  echo "    figures grid --json: byte-identical across runs"
fi

if [[ "$bench_compare" == 1 ]]; then
  echo "==> bench compare: deterministic metrics vs committed baselines"
  cargo run --offline --release -p gdmp-bench --bin bench_compare
fi

echo "CI OK"
