//! Offline shim of `rand`: a deterministic xoshiro256** `StdRng` behind the
//! `Rng`/`SeedableRng` trait subset this workspace uses (`seed_from_u64`,
//! `gen`, `gen_range`, `gen_bool`).

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from the "standard" distribution (what `rng.gen()` uses).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from `[low, high)`; supports the integer types only.
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub trait RangeSample: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, as rand does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_uniform_enough() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..100).map(|_| a.gen::<f64>()).collect();
        let ys: Vec<f64> = (0..100).map(|_| b.gen::<f64>()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((0.35..0.65).contains(&mean), "mean={mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }
}
