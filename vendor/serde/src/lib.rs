//! Offline shim of `serde`: a value-tree data model instead of the real
//! visitor architecture. `Serialize` lowers a type to [`Value`];
//! `Deserialize` rebuilds it. `serde_json` (the sibling shim) renders and
//! parses `Value` as JSON. The derive macro (`serde_derive` shim) generates
//! both impls for structs and enums, using serde's externally-tagged enum
//! representation so the wire shapes look like real serde_json.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model both traits meet at. Object fields keep
/// insertion order (struct declaration order), which makes serialized
/// output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path/type mismatch report.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Alias so signatures written against real serde keep compiling.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---- helpers used by generated code ------------------------------------

/// Fetch a required struct field from an object value.
pub fn field<'v>(v: &'v Value, ty: &str, name: &str) -> Result<&'v Value, DeError> {
    v.get(name)
        .ok_or_else(|| DeError(format!("missing field `{name}` while deserializing {ty}")))
}

/// Fetch a required tuple/array element.
pub fn element<'v>(v: &'v Value, ty: &str, idx: usize) -> Result<&'v Value, DeError> {
    match v {
        Value::Array(items) => items
            .get(idx)
            .ok_or_else(|| DeError(format!("missing element {idx} while deserializing {ty}"))),
        other => Err(unexpected(ty, "array", other)),
    }
}

pub fn unexpected(ty: &str, want: &str, got: &Value) -> DeError {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    DeError(format!("invalid type while deserializing {ty}: expected {want}, got {kind}"))
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Err(unexpected(stringify!($t), "unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for i64")))?,
                    other => return Err(unexpected(stringify!($t), "integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(unexpected("f64", "number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("char", "single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(unexpected("String", "string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("Vec", "array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort serialized forms so output is independent of hash order.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(cmp_values);
        Value::Array(items)
    }
}

/// Total order over values, used to canonicalize hash-ordered containers.
pub fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    fn num(v: &Value) -> Option<f64> {
        match v {
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => x
            .iter()
            .zip(y)
            .map(|(p, q)| cmp_values(p, q))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        (Value::Object(x), Value::Object(y)) => x
            .iter()
            .zip(y)
            .map(|((ka, va), (kb, vb))| ka.cmp(kb).then_with(|| cmp_values(va, vb)))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| x.len().cmp(&y.len())),
        _ => match (num(a), num(b)) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            _ => rank(a).cmp(&rank(b)),
        },
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

/// Map keys must render as JSON object keys; strings pass through, other
/// scalar keys use their display form (round-tripped on deserialize).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError(format!("bad integer map key {key:?}")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("BTreeMap", "object", other)),
        }
    }
}

impl<K: MapKey + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output regardless of hash order.
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("HashMap", "object", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(unexpected("()", "null", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($( ($($name:ident : $idx:tt),+) ),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($($name::from_value(element(v, "tuple", $idx)?)?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
    }

    #[test]
    fn nested_containers_roundtrip() {
        let x: Vec<(String, Vec<u32>)> = vec![("a".into(), vec![1, 2]), ("b".into(), vec![])];
        let back: Vec<(String, Vec<u32>)> = Deserialize::from_value(&x.to_value()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn option_null_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }
}
