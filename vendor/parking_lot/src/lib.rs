//! Offline shim of `parking_lot`: std sync primitives re-exposed with the
//! non-poisoning API (`lock()`/`read()`/`write()` return guards directly).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}
