//! Offline shim of the `bytes` crate: a cheaply cloneable, sliceable byte
//! container plus the `Buf`/`BufMut` cursor traits, covering exactly the
//! API surface this workspace uses.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted view into a byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of range for {}", self.len());
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off the first `at` bytes, leaving the remainder in `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(..at);
        self.start += at;
        head
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "...({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Growable byte buffer; `freeze` converts to an immutable [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    read: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { inner: Vec::with_capacity(cap), read: 0 }
    }

    pub fn len(&self) -> usize {
        self.inner.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.inner.drain(..self.read);
        }
        Bytes::from(self.inner)
    }

    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len());
        let head = self.inner[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut { inner: head, read: 0 }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.inner[self.read..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.read += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_backing() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn buf_cursor_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u64(0xDEAD_BEEF);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64(), 0xDEAD_BEEF);
        assert!(!b.has_remaining());
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4]);
    }
}
