//! Offline shim of `serde_json`: renders and parses the serde shim's
//! [`Value`] tree as JSON. Output is deterministic: object fields keep the
//! order `Serialize` produced (struct declaration order; maps sorted).

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ------------------------------------------------------

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Match serde_json: integral floats still show a fraction.
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ------------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at offset {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("bad array separator {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("bad object separator {other:?}"))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_containers() {
        let x: Vec<(String, Vec<u64>)> =
            vec![("a \"q\" \\".into(), vec![1, 2, 3]), ("λ".into(), vec![])];
        let json = to_string(&x).unwrap();
        let back: Vec<(String, Vec<u64>)> = from_str(&json).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn floats_and_ints_render() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
    }

    #[test]
    fn parse_whitespace_and_escapes() {
        let v: Vec<String> = from_str(" [ \"a\\nb\" , \"\\u0041\" ] ").unwrap();
        assert_eq!(v, vec!["a\nb".to_string(), "A".to_string()]);
    }
}
