//! Offline shim of `proptest`: a deterministic random-input test harness
//! exposing the macro/strategy surface this workspace uses. No shrinking —
//! failures report the case number, and every run draws the same inputs
//! (the RNG is seeded from the test name), so failures reproduce exactly.

use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---- RNG ----------------------------------------------------------------

/// Deterministic splitmix64 stream, seeded per test × case.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

// ---- errors & config ----------------------------------------------------

/// A failed `prop_assert!` inside a proptest body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Mirror of proptest's `TestCaseError::reject`.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(format!("input rejected: {}", msg.into()))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

// ---- Strategy -----------------------------------------------------------

/// A recipe for generating values. Object-safe so `prop_oneof!` can mix
/// arm types behind `dyn Strategy`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { src: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { src: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { src: self, f, reason }
    }

    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    src: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.src.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    src: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.src.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    src: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.src.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($( ($($name:ident : $idx:tt),+) ),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

// ---- any::<T>() ---------------------------------------------------------

pub trait ArbitrarySample: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias ~12% of draws toward boundary values; edges find bugs.
                match rng.below(8) {
                    0 => match rng.below(4) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        _ => 1 as $t,
                    },
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitrarySample> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: ArbitrarySample>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---- string strategies (regex-lite) -------------------------------------

/// `&'static str` acts as a regex-ish string strategy, like in proptest.
/// Supported syntax: literals, `.`, `[...]` classes with ranges, and the
/// quantifiers `*` `+` `?` `{n}` `{m,n}` — the subset our tests use.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_regex_lite(self, rng)
    }
}

#[derive(Debug)]
enum Atom {
    Class(Vec<(char, char)>),
}

fn generate_regex_lite(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Class(vec![(' ', '~')])
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // `]`
                Atom::Class(ranges)
            }
            '\\' => {
                i += 2;
                Atom::Class(vec![(chars[i - 1], chars[i - 1])])
            }
            c => {
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        // Quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0usize, 8usize)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').expect("closing }") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier lower bound"),
                        n.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        let Atom::Class(ranges) = &atom;
        for _ in 0..count {
            let total: u64 = ranges.iter().map(|(a, b)| *b as u64 - *a as u64 + 1).sum();
            let mut pick = rng.below(total.max(1));
            for (a, b) in ranges {
                let span = *b as u64 - *a as u64 + 1;
                if pick < span {
                    out.push(char::from_u32(*a as u32 + pick as u32).unwrap_or('?'));
                    break;
                }
                pick -= span;
            }
        }
    }
    out
}

// ---- collections --------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: ::std::hash::Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: ::std::hash::Hash + Eq,
    {
        type Value = ::std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> ::std::collections::HashSet<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let want = self.size.lo + (rng.next_u64() % span) as usize;
            let mut out = ::std::collections::HashSet::new();
            for _ in 0..want * 10 + 20 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let want = self.size.lo + (rng.next_u64() % span) as usize;
            let mut out = BTreeSet::new();
            // The element domain may be smaller than `want`; bound the tries.
            for _ in 0..want * 10 + 20 {
                if out.len() >= want {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub use collection::SizeRange;

// ---- prop_oneof support -------------------------------------------------

/// Uniform choice among boxed alternative strategies.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn single<S: Strategy<Value = V> + 'static>(s: S) -> Union<V> {
        Union { arms: vec![Box::new(s)] }
    }

    pub fn or<S: Strategy<Value = V> + 'static>(mut self, s: S) -> Union<V> {
        self.arms.push(Box::new(s));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// Needed so `BTreeSet` shows up for users of the prelude glob in this file.
#[allow(unused_imports)]
use BTreeSet as _BTreeSetUsed;

// ---- macros -------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let u = $crate::Union::single($first);
        $(let u = u.or($rest);)*
        u
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng =
                    $crate::TestRng::deterministic(stringify!($name), u64::from(__case));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {} of {}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ArbitrarySample,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
    /// `use proptest::prelude::*` exposes the crate as `prop` in real
    /// proptest; mirror that for `prop::collection::vec(...)` call sites.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("t", 0);
        for _ in 0..200 {
            let (a, b, c) = (1u64..=1000, 1u64..200, 16usize..=512).generate(&mut rng);
            assert!((1..=1000).contains(&a));
            assert!((1..200).contains(&b));
            assert!((16..=512).contains(&c));
        }
    }

    #[test]
    fn regex_lite_shapes() {
        let mut rng = TestRng::deterministic("r", 3);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_.-]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~]{0,64}".generate(&mut rng);
            assert!(t.len() <= 64);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_surface_works(
            xs in collection::vec(any::<u8>(), 1..16),
            which in prop_oneof![Just(0u8), Just(1u8)],
            name in "[a-z]{1,4}",
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(which <= 1, "which={}", which);
            prop_assert!(!name.is_empty() && name.len() <= 4);
        }
    }
}
