//! Offline shim of `criterion`: the macro/builder surface the bench targets
//! use, backed by a simple wall-clock timer. Bench binaries are compiled by
//! `cargo test` too (harness = false); in that mode cargo does NOT pass
//! `--bench`, so `criterion_main!` exits immediately and tier-1 stays fast.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, setup: S, routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        let sample_size = self.sample_size;
        run_one("", &id.into(), None, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.throughput, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into(), self.throughput, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    // One warm-up pass, then `sample_size` timed iterations in one batch.
    let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warm);
    let mut b = Bencher { iters: sample_size as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / sample_size as f64;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut line = format!("{label:<56} {:>12.3} us/iter", per_iter * 1e6);
    match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            line.push_str(&format!(
                "  {:>10.1} MiB/s",
                n as f64 / per_iter / (1024.0 * 1024.0)
            ));
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            line.push_str(&format!("  {:>10.0} elem/s", n as f64 / per_iter));
        }
        _ => {}
    }
    println!("{line}");
}

/// True when the binary was invoked by `cargo bench` (cargo appends
/// `--bench`); `cargo test` compiles/runs the same binary without it.
pub fn invoked_as_benchmark() -> bool {
    std::env::args().any(|a| a == "--bench")
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::invoked_as_benchmark() {
                // Running under `cargo test`: nothing to assert, exit fast.
                println!("bench harness: skipped (pass --bench to run)");
                return;
            }
            $($group();)+
        }
    };
}
