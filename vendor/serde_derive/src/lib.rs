//! Offline shim of `serde_derive`: generates `Serialize`/`Deserialize`
//! impls for the value-tree serde shim by walking the raw token stream —
//! no `syn`/`quote`, because the build environment has no registry access.
//!
//! Supported shapes (everything this workspace derives on): non-generic
//! structs with named fields, tuple structs, unit structs, and enums whose
//! variants are unit, tuple, or struct-like. Enums use serde's externally
//! tagged representation (`"Variant"` / `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

struct Def {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    gen_serialize(&def).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    gen_deserialize(&def).parse().expect("generated Deserialize impl parses")
}

// ---- parsing ------------------------------------------------------------

fn parse_def(input: TokenStream) -> Def {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_shape(&tokens, &mut i)),
        "enum" => Kind::Enum(parse_enum_variants(&tokens, &mut i)),
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    };
    Def { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_shape(tokens: &[TokenTree], i: &mut usize) -> Shape {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_top_level_commas(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde shim derive: unexpected struct body {other:?}"),
    }
}

fn parse_enum_variants(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, Shape)> {
    let body = match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim derive: unexpected enum body {other:?}"),
    };
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        skip_attrs_and_vis(&toks, &mut j);
        if j >= toks.len() {
            break;
        }
        let vname = match &toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        j += 1;
        let shape = match toks.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                Shape::Tuple(count_top_level_commas(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        while j < toks.len() {
            if matches!(&toks[j], TokenTree::Punct(p) if p.as_char() == ',') {
                j += 1;
                break;
            }
            j += 1;
        }
        variants.push((vname, shape));
    }
    variants
}

/// Parse `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        skip_attrs_and_vis(&toks, &mut j);
        if j >= toks.len() {
            break;
        }
        let fname = match &toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        j += 1;
        match &toks[j] {
            TokenTree::Punct(p) if p.as_char() == ':' => j += 1,
            other => panic!("serde shim derive: expected `:` after `{fname}`, got {other}"),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle: i32 = 0;
        while j < toks.len() {
            match &toks[j] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fields.push(fname);
    }
    fields
}

/// Number of fields in a tuple body: top-level commas (angle-aware) + 1.
fn count_top_level_commas(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut commas = 0;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + usize::from(!trailing_comma)
}

// ---- code generation ----------------------------------------------------

fn gen_serialize(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(vec![{}]))]),",
                            pats.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let pats = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {pats} }} => ::serde::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Object(vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Shape::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|k| {
                    format!("::serde::Deserialize::from_value(::serde::element(v, \"{name}\", {k})?)?")
                })
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(v, \"{name}\", \"{f}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, Shape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_value(::serde::element(inner, \"{name}::{v}\", {k})?)?"
                                )
                            })
                            .collect();
                        Some(format!("\"{v}\" => Ok({name}::{v}({})),", items.join(", ")))
                    }
                    Shape::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::field(inner, \"{name}::{v}\", \"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::unexpected(\"{name}\", \"string or single-key object\", other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
